package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"cachesync/internal/serve"
	"cachesync/internal/simrun"
)

// sweepShard is one replica's slice of a sweep: the cell indices it
// owns (positions in the expanded request) and the sub-request that
// names exactly those cells.
type sweepShard struct {
	index   int   // shard number, in first-owned-cell order
	indices []int // positions in the full expansion
	req     serve.SweepRequest
	prefs   []string // replica preference order (owner of the shard's first cell)
}

// handleSweep shards a sweep across the fleet and merges the results
// back into cell order. Each cell is assigned to the replica that owns
// its simulate key on the ring, so a sweep warms exactly the caches
// that later /v1/simulate requests for the same cells will hit, and a
// repeated sweep is answered shard-by-shard from replica caches.
//
// Plain requests return the merged SweepResponse; ?stream=1 returns an
// NDJSON stream: every shard's job events in shard-index order (shard
// 1's events buffer at its replica while shard 0 streams — merge by
// shard index is what makes the interleaving deterministic), then a
// final "result" line carrying the merged points.
func (c *Cluster) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var sr serve.SweepRequest
	if err := json.Unmarshal(body, &sr); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	cfgs, err := sr.Expand()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return
	}
	shards := c.shardSweep(sr, cfgs)
	if len(shards) == 0 {
		c.met.unrouted.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"error": "no healthy replica"})
		return
	}
	c.met.sweepShards.Add(int64(len(shards)))
	if r.URL.Query().Get("stream") == "1" {
		c.streamSweep(w, r, cfgs, shards)
		return
	}

	points, errs := c.runShards(r.Context(), cfgs, shards)
	if errs != nil {
		writeJSON(w, http.StatusBadGateway, map[string]any{"error": errs.Error()})
		return
	}
	pass := true
	for _, p := range points {
		pass = pass && p.Pass
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pass": pass, "shards": len(shards), "points": points,
	})
}

// shardSweep groups the expanded cells by owning replica. Shard order
// (and therefore stream order) follows each shard's first cell, so it
// is a pure function of the request and the roster.
func (c *Cluster) shardSweep(sr serve.SweepRequest, cfgs []simrun.Config) []*sweepShard {
	byOwner := make(map[string]*sweepShard)
	var order []*sweepShard
	for i, cfg := range cfgs {
		prefs := c.ring.pick("simulate|" + cfg.Hash())
		owner := ""
		for _, n := range prefs {
			if c.replicas[n].healthy.Load() {
				owner = n
				break
			}
		}
		if owner == "" {
			return nil
		}
		sh := byOwner[owner]
		if sh == nil {
			sh = &sweepShard{
				index: len(order),
				prefs: prefs,
				req: serve.SweepRequest{
					Workload: sr.Workload, Ops: sr.Ops, Iters: sr.Iters, Seed: sr.Seed,
					Tiers: sr.Tiers,
				},
			}
			byOwner[owner] = sh
			order = append(order, sh)
		}
		sh.indices = append(sh.indices, i)
		sh.req.Cells = append(sh.req.Cells, serve.SweepCell{Protocol: cfg.Protocol, Procs: cfg.Procs, Remote: cfg.RemoteCycles})
	}
	return order
}

// postShard runs one shard synchronously on the best live replica in
// its preference order, retrying down the ring on transport errors —
// mid-sweep replica death surfaces here, and the retry is cheap
// because completed cells answer from the artifact exchange.
func (c *Cluster) postShard(ctx context.Context, sh *sweepShard, query string) (*http.Response, string, error) {
	payload, err := json.Marshal(sh.req)
	if err != nil {
		return nil, "", err
	}
	var lastErr error
	for _, name := range sh.prefs {
		rep := c.replicas[name]
		if !rep.healthy.Load() {
			continue
		}
		url := "http://" + rep.address() + "/v1/sweep" + query
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			return nil, "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return nil, "", ctx.Err()
			}
			c.markDown(rep)
			c.met.reroutes.Add(1)
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			drainClose(resp)
			c.met.reroutes.Add(1)
			lastErr = fmt.Errorf("%s: 503", name)
			continue
		}
		c.met.route(name)
		return resp, name, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no healthy replica for shard %d", sh.index)
	}
	return nil, "", lastErr
}

// runShards executes every shard concurrently and scatters each
// shard's points back to their positions in the full expansion.
func (c *Cluster) runShards(ctx context.Context, cfgs []simrun.Config, shards []*sweepShard) ([]serve.SweepPoint, error) {
	points := make([]serve.SweepPoint, len(cfgs))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, sh *sweepShard) {
			defer wg.Done()
			resp, name, err := c.postShard(ctx, sh, "")
			if err != nil {
				errs[si] = fmt.Errorf("shard %d: %w", sh.index, err)
				return
			}
			defer drainClose(resp)
			if resp.StatusCode != http.StatusOK {
				errs[si] = fmt.Errorf("shard %d on %s: status %d", sh.index, name, resp.StatusCode)
				return
			}
			var sresp serve.SweepResponse
			if err := json.NewDecoder(resp.Body).Decode(&sresp); err != nil {
				errs[si] = fmt.Errorf("shard %d on %s: %w", sh.index, name, err)
				return
			}
			if len(sresp.Points) != len(sh.indices) {
				errs[si] = fmt.Errorf("shard %d on %s: %d points for %d cells",
					sh.index, name, len(sresp.Points), len(sh.indices))
				return
			}
			for j, idx := range sh.indices {
				points[idx] = sresp.Points[j]
			}
		}(si, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return points, nil
}

// sweepEvent is one line of the cluster sweep stream.
type sweepEvent struct {
	Shard   int    `json:"shard"`
	Replica string `json:"replica,omitempty"`
	Seq     int    `json:"seq,omitempty"`
	T       string `json:"t"`
	Msg     string `json:"msg,omitempty"`
}

// streamSweep is the ?stream=1 path: kick every shard off
// asynchronously, then relay each shard's job events in shard-index
// order, then emit the merged result (a sync re-POST per shard,
// answered from the replicas' now-warm caches).
func (c *Cluster) streamSweep(w http.ResponseWriter, r *http.Request, cfgs []simrun.Config, shards []*sweepShard) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev sweepEvent) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		return true
	}

	// Launch all shards before streaming any: the replicas execute
	// concurrently while we relay in order.
	type launched struct {
		job     string
		replica string
		err     error
	}
	jobs := make([]launched, len(shards))
	for si, sh := range shards {
		resp, name, err := c.postShard(r.Context(), sh, "?async=1")
		if err != nil {
			jobs[si] = launched{err: err}
			continue
		}
		var acc struct {
			Job string `json:"job"`
		}
		err = json.NewDecoder(resp.Body).Decode(&acc)
		drainClose(resp)
		if err != nil || acc.Job == "" {
			jobs[si] = launched{err: fmt.Errorf("shard %d on %s: bad accept", sh.index, name)}
			continue
		}
		jobs[si] = launched{job: acc.Job, replica: name}
	}

	for si, sh := range shards {
		if jobs[si].err != nil {
			emit(sweepEvent{Shard: sh.index, T: "error", Msg: jobs[si].err.Error()})
			continue
		}
		if !c.relayJob(r.Context(), sh, jobs[si].replica, jobs[si].job, emit) {
			return
		}
	}

	points, err := c.runShards(r.Context(), cfgs, shards)
	if err != nil {
		emit(sweepEvent{T: "error", Msg: err.Error()})
		return
	}
	pass := true
	for _, p := range points {
		pass = pass && p.Pass
	}
	out := struct {
		T      string             `json:"t"`
		Pass   bool               `json:"pass"`
		Shards int                `json:"shards"`
		Points []serve.SweepPoint `json:"points"`
	}{T: "result", Pass: pass, Shards: len(shards), Points: points}
	if err := enc.Encode(out); err == nil && fl != nil {
		fl.Flush()
	}
}

// relayJob streams one shard's replica-side job events, re-tagged
// with the shard index. Returns false when the client went away.
func (c *Cluster) relayJob(ctx context.Context, sh *sweepShard, replica, job string, emit func(sweepEvent) bool) bool {
	rep := c.replicas[replica]
	url := "http://" + rep.address() + "/v1/jobs/" + job
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return emit(sweepEvent{Shard: sh.index, T: "error", Msg: err.Error()})
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return false
		}
		return emit(sweepEvent{Shard: sh.index, T: "error", Msg: err.Error()})
	}
	defer drainClose(resp)
	if resp.StatusCode != http.StatusOK {
		return emit(sweepEvent{Shard: sh.index, T: "error",
			Msg: fmt.Sprintf("job stream on %s: status %d", replica, resp.StatusCode)})
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev serve.JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue
		}
		if !emit(sweepEvent{Shard: sh.index, Replica: replica, Seq: ev.Seq, T: ev.T, Msg: ev.Msg}) {
			return false
		}
	}
	return true
}
