package memory

import (
	"testing"
	"testing/quick"
)

func TestDirectoryAddRemove(t *testing.T) {
	d := NewDirectory()
	if got := d.Members(1, -1); len(got) != 0 {
		t.Fatalf("fresh directory has members: %v", got)
	}
	d.Add(1, 2)
	d.Add(1, 0)
	d.Add(1, 2) // idempotent
	if got := d.Members(1, -1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Members = %v, want [0 2]", got)
	}
	if got := d.Members(1, 2); len(got) != 1 || got[0] != 0 {
		t.Errorf("Members excluding 2 = %v, want [0]", got)
	}
	d.Remove(1, 0)
	if d.Holders(1) != 1 {
		t.Errorf("Holders = %d", d.Holders(1))
	}
	d.Remove(1, 2)
	if d.Holders(1) != 0 {
		t.Error("directory not empty after removals")
	}
	d.Remove(1, 9) // absent: no-op
}

func TestDirectorySetSole(t *testing.T) {
	d := NewDirectory()
	d.Add(3, 0)
	d.Add(3, 1)
	d.Add(3, 2)
	d.SetSole(3, 1)
	if got := d.Members(3, -1); len(got) != 1 || got[0] != 1 {
		t.Errorf("after SetSole: %v, want [1]", got)
	}
}

// Property: Members is always sorted and never contains the excluded
// cache or duplicates.
func TestDirectoryMembersProperty(t *testing.T) {
	f := func(adds []uint8, exclude uint8) bool {
		d := NewDirectory()
		for _, a := range adds {
			d.Add(5, int(a%16))
		}
		got := d.Members(5, int(exclude%16))
		seen := map[int]bool{}
		prev := -1
		for _, id := range got {
			if id <= prev || seen[id] || id == int(exclude%16) {
				return false
			}
			seen[id] = true
			prev = id
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
