package memory

import (
	"math/bits"

	"cachesync/internal/addr"
)

// blockStore maps a block number to its word storage: a growable
// open-addressing table with linear probing, replacing the runtime map
// on the per-word and per-transaction paths. Block data lives in
// fixed-size chunks that are never reallocated, so a returned slice
// stays valid for the life of the store (the map gave the same
// guarantee).
type blockStore struct {
	keys  []uint64   // block+1; 0 marks an empty slot
	vals  [][]uint64 // the block's words, aliasing a chunk
	n     int        // occupied slots
	mask  uint64
	shift uint

	bw     int // words per block
	chunks [][]uint64
	used   int // blocks carved off the last chunk
}

// storeHashMult is 2^64 divided by the golden ratio (Fibonacci
// hashing), as in the caches' tag index.
const storeHashMult = 0x9e3779b97f4a7c15

// chunkBlocks is how many blocks one storage chunk holds.
const chunkBlocks = 256

func newBlockStore(blockWords int) *blockStore {
	const n = 256
	return &blockStore{
		keys:  make([]uint64, n),
		vals:  make([][]uint64, n),
		mask:  n - 1,
		shift: uint(64 - bits.TrailingZeros(n)),
		bw:    blockWords,
	}
}

func (s *blockStore) home(k uint64) uint64 { return (k * storeHashMult) >> s.shift }

// get returns block b's words, or nil when the block has never been
// touched (it reads as zero).
func (s *blockStore) get(b addr.Block) []uint64 {
	k := uint64(b) + 1
	for i := s.home(k); ; i = (i + 1) & s.mask {
		switch s.keys[i] {
		case k:
			return s.vals[i]
		case 0:
			return nil
		}
	}
}

// getOrCreate returns block b's words, allocating zeroed storage from
// the current chunk on first touch.
func (s *blockStore) getOrCreate(b addr.Block) []uint64 {
	k := uint64(b) + 1
	for i := s.home(k); ; i = (i + 1) & s.mask {
		switch s.keys[i] {
		case k:
			return s.vals[i]
		case 0:
			d := s.alloc()
			s.keys[i] = k
			s.vals[i] = d
			s.n++
			if 2*s.n > len(s.keys) {
				s.grow()
			}
			return d
		}
	}
}

func (s *blockStore) alloc() []uint64 {
	if len(s.chunks) == 0 || s.used == chunkBlocks {
		s.chunks = append(s.chunks, make([]uint64, chunkBlocks*s.bw))
		s.used = 0
	}
	c := s.chunks[len(s.chunks)-1]
	d := c[s.used*s.bw : (s.used+1)*s.bw : (s.used+1)*s.bw]
	s.used++
	return d
}

// grow doubles the table and reinserts every entry; block storage is
// untouched, so outstanding slices stay valid.
func (s *blockStore) grow() {
	oldKeys, oldVals := s.keys, s.vals
	n := 2 * len(oldKeys)
	s.keys = make([]uint64, n)
	s.vals = make([][]uint64, n)
	s.mask = uint64(n - 1)
	s.shift = uint(64 - bits.TrailingZeros(uint(n)))
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		for j := s.home(k); ; j = (j + 1) & s.mask {
			if s.keys[j] == 0 {
				s.keys[j] = k
				s.vals[j] = oldVals[i]
				break
			}
		}
	}
}
