package memory

import (
	"sort"

	"cachesync/internal/addr"
)

// Directory is the per-block presence record of a partial-broadcast
// (directory-based) system such as Censier-Feautrier 1978: main
// memory tracks which caches hold each block, so consistency messages
// are sent point-to-point to the recorded holders instead of being
// broadcast. The paper's Section A.2 contrasts this with full
// broadcast, whose operation "is entirely distributed and parallel,
// hence is fast" at the price of a more complex memory.
type Directory struct {
	presence map[addr.Block]map[int]bool
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{presence: make(map[addr.Block]map[int]bool)}
}

// Add records that cache id holds block b.
func (d *Directory) Add(b addr.Block, id int) {
	set, ok := d.presence[b]
	if !ok {
		set = make(map[int]bool)
		d.presence[b] = set
	}
	set[id] = true
}

// Remove clears cache id's presence for block b.
func (d *Directory) Remove(b addr.Block, id int) {
	if set, ok := d.presence[b]; ok {
		delete(set, id)
		if len(set) == 0 {
			delete(d.presence, b)
		}
	}
}

// SetSole records cache id as the only holder of block b (after an
// invalidating acquisition).
func (d *Directory) SetSole(b addr.Block, id int) {
	d.presence[b] = map[int]bool{id: true}
}

// Members returns the caches recorded as holding block b, sorted,
// excluding exclude (pass a negative value to exclude nobody).
func (d *Directory) Members(b addr.Block, exclude int) []int {
	set := d.presence[b]
	out := make([]int, 0, len(set))
	for id := range set {
		if id != exclude {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// Set replaces block b's presence record with exactly ids (an empty
// list clears it). It is the restore hook of the bounded model
// checker, which re-materializes directory state when revisiting an
// explored state.
func (d *Directory) Set(b addr.Block, ids []int) {
	if len(ids) == 0 {
		delete(d.presence, b)
		return
	}
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		set[id] = true
	}
	d.presence[b] = set
}

// Mask returns block b's presence set as a bitmask over cache IDs —
// the allocation-free accessor of the model checker's state encoder
// (IDs ≥ 64 would not be representable; simulated machines are far
// smaller).
func (d *Directory) Mask(b addr.Block) uint64 {
	var m uint64
	for id := range d.presence[b] {
		m |= 1 << uint(id)
	}
	return m
}

// Holders returns the number of caches recorded for block b.
func (d *Directory) Holders(b addr.Block) int { return len(d.presence[b]) }
