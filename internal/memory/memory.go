// Package memory models main memory for the broadcast cache system.
//
// Memory stores real word values (so tests can verify the
// latest-version requirement with data, not just states), and carries
// two optional pieces of per-block state used by specific protocols:
//
//   - a source bit (Frank's Synapse, Feature 2): whether memory, as
//     opposed to some cache, is the source of the block;
//   - a lock tag (Section E.3): when a locked block must be purged
//     from a small-set-size cache, the lock bit is written to memory so
//     the lock survives the purge.
package memory

import (
	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/stats"
)

// LockTag records a lock that was pushed out to memory when the
// locked block was purged (Section E.3, "Two Concerns").
type LockTag struct {
	Locked bool
	Owner  int  // processor/cache that holds the lock
	Waiter bool // the purged line was in the lock-waiter state
}

// Memory is a latency-free value store; the simulation engine prices
// access latency from its Timing model.
type Memory struct {
	geom      addr.Geometry
	data      *blockStore
	notSource map[addr.Block]bool // Frank: true when a cache, not memory, is source
	lockTags  map[addr.Block]LockTag

	// Dir is the presence directory used by partial-broadcast schemes
	// (Censier-Feautrier); broadcast protocols leave it empty.
	Dir *Directory

	Counts stats.Counters
	// Cached stats handles for the per-snoop counters, resolved on
	// first use (see stats.Counters.Handle).
	cflushH, supplyH, wwordH, uwordH, flushH, iowH *int64
}

// bump increments the counter behind *h, resolving the handle on
// first use.
func (m *Memory) bump(h **int64, name string) {
	if *h == nil {
		*h = m.Counts.Handle(name)
	}
	**h++
}

// New returns an empty memory (all words read as zero).
func New(g addr.Geometry) *Memory {
	return &Memory{
		geom:      g,
		data:      newBlockStore(g.BlockWords),
		notSource: make(map[addr.Block]bool),
		lockTags:  make(map[addr.Block]LockTag),
		Dir:       NewDirectory(),
	}
}

// Geometry returns the memory geometry.
func (m *Memory) Geometry() addr.Geometry { return m.geom }

func (m *Memory) block(b addr.Block) []uint64 {
	return m.data.getOrCreate(b)
}

// ReadBlock returns a copy of block b's contents.
func (m *Memory) ReadBlock(b addr.Block) []uint64 {
	out := make([]uint64, m.geom.BlockWords)
	copy(out, m.block(b))
	return out
}

// BlockView returns block b's contents without copying. The slice
// aliases live memory — callers must treat it as read-only; it exists
// for the per-transition inspection loops of the checkers.
func (m *Memory) BlockView(b addr.Block) []uint64 {
	return m.block(b)
}

// WriteBlock stores a whole block (a flush/write-back).
func (m *Memory) WriteBlock(b addr.Block, words []uint64) {
	copy(m.block(b), words)
}

// ReadWord returns the word at a.
func (m *Memory) ReadWord(a addr.Addr) uint64 {
	return m.block(m.geom.BlockOf(a))[m.geom.Offset(a)]
}

// WriteWord stores one word (a write-through).
func (m *Memory) WriteWord(a addr.Addr, v uint64) {
	m.block(m.geom.BlockOf(a))[m.geom.Offset(a)] = v
}

// SetSource records whether memory is the source for block b
// (Frank's memory source bit). Memory is the source by default.
func (m *Memory) SetSource(b addr.Block, memoryIsSource bool) {
	if memoryIsSource {
		delete(m.notSource, b)
	} else {
		m.notSource[b] = true
	}
}

// IsSource reports whether memory is the source for block b.
func (m *Memory) IsSource(b addr.Block) bool { return !m.notSource[b] }

// SetLockTag installs or clears the memory lock tag for block b.
func (m *Memory) SetLockTag(b addr.Block, t LockTag) {
	if t.Locked {
		m.lockTags[b] = t
	} else {
		delete(m.lockTags, b)
	}
}

// GetLockTag returns block b's lock tag.
func (m *Memory) GetLockTag(b addr.Block) LockTag {
	if len(m.lockTags) == 0 {
		// Most protocols never purge a lock to memory; skip the map.
		return LockTag{}
	}
	return m.lockTags[b]
}

// Respond applies memory's role in a bus transaction after all caches
// have snooped. It supplies data when no cache inhibited it, absorbs
// write-throughs and flushes, and enforces memory lock tags.
// It reports whether memory supplied the block data (so the engine can
// charge memory latency).
func (m *Memory) Respond(t *bus.Transaction) (supplied bool) {
	// A lock pushed to memory denies fetches by anyone but the owner
	// (Section E.3): the lock is still held even though no cache holds
	// the locked line. The len guard keeps the common no-locks case off
	// the map entirely.
	if tag := m.GetLockTag(t.Block); tag.Locked {
		switch t.Cmd {
		case bus.Read, bus.ReadX, bus.Upgrade, bus.WriteNoFetch:
			if t.Requester != tag.Owner {
				t.Lines.Locked = true
				if !tag.Waiter {
					tag.Waiter = true
					m.lockTags[t.Block] = tag
				}
				return false
			}
			// The owner re-fetching its own locked block (e.g. to
			// unlock it) reclaims the lock from memory.
			if t.UnlockIntent || t.LockIntent {
				t.Lines.Locked = false
			}
		}
	}

	// A snooper that flushed during a cache-to-cache transfer also
	// updates memory (Feature 7).
	if t.Flushed && t.Cmd != bus.Flush && len(t.BlockData) > 0 {
		m.WriteBlock(t.Block, t.BlockData)
		m.bump(&m.cflushH, "mem.concurrent-flush")
	}

	switch t.Cmd {
	case bus.Read, bus.ReadX, bus.IORead:
		if t.Lines.Locked {
			return false
		}
		if t.Lines.Inhibit {
			return false // a source cache supplies the block
		}
		t.SupplyBlock(m.block(t.Block))
		m.bump(&m.supplyH, "mem.supply")
		return true
	case bus.WriteWord:
		if t.Lines.Locked {
			return false
		}
		m.WriteWord(t.Addr, t.WordData)
		m.bump(&m.wwordH, "mem.writeword")
	case bus.UpdateWord:
		if t.MemUpdate {
			m.WriteWord(t.Addr, t.WordData)
			m.bump(&m.uwordH, "mem.updateword")
		}
	case bus.Flush:
		m.WriteBlock(t.Block, t.BlockData)
		m.bump(&m.flushH, "mem.flush")
	case bus.IOWrite:
		if t.Lines.Locked {
			// The block is locked in a cache: the input transfer is
			// denied (Section E.2 / E.3).
			return false
		}
		m.WriteBlock(t.Block, t.BlockData)
		m.bump(&m.iowH, "mem.iowrite")
	}
	return false
}
