package memory

import (
	"testing"
	"testing/quick"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
)

var g4 = addr.MustGeometry(4, 4)

func TestReadDefaultZero(t *testing.T) {
	m := New(g4)
	if v := m.ReadWord(123); v != 0 {
		t.Errorf("uninitialized word = %d, want 0", v)
	}
	blk := m.ReadBlock(9)
	if len(blk) != 4 {
		t.Fatalf("block len = %d, want 4", len(blk))
	}
	for i, v := range blk {
		if v != 0 {
			t.Errorf("blk[%d] = %d, want 0", i, v)
		}
	}
}

func TestWordReadWrite(t *testing.T) {
	m := New(g4)
	m.WriteWord(6, 42)
	if v := m.ReadWord(6); v != 42 {
		t.Errorf("ReadWord(6) = %d, want 42", v)
	}
	// Word 6 is offset 2 of block 1.
	blk := m.ReadBlock(1)
	if blk[2] != 42 {
		t.Errorf("block view = %v, want word 2 == 42", blk)
	}
}

func TestBlockReadWriteIsolation(t *testing.T) {
	m := New(g4)
	m.WriteBlock(2, []uint64{1, 2, 3, 4})
	got := m.ReadBlock(2)
	got[0] = 99 // must not alias memory
	if v := m.ReadWord(8); v != 1 {
		t.Errorf("ReadBlock aliases memory: word 8 = %d, want 1", v)
	}
}

func TestSourceBit(t *testing.T) {
	m := New(g4)
	if !m.IsSource(5) {
		t.Error("memory should be source by default")
	}
	m.SetSource(5, false)
	if m.IsSource(5) {
		t.Error("SetSource(false) ignored")
	}
	m.SetSource(5, true)
	if !m.IsSource(5) {
		t.Error("SetSource(true) ignored")
	}
}

func TestLockTag(t *testing.T) {
	m := New(g4)
	if tag := m.GetLockTag(3); tag.Locked {
		t.Error("default lock tag should be unlocked")
	}
	m.SetLockTag(3, LockTag{Locked: true, Owner: 2})
	if tag := m.GetLockTag(3); !tag.Locked || tag.Owner != 2 {
		t.Errorf("lock tag = %+v", tag)
	}
	m.SetLockTag(3, LockTag{})
	if tag := m.GetLockTag(3); tag.Locked {
		t.Error("clearing lock tag failed")
	}
}

func TestRespondSupplies(t *testing.T) {
	m := New(g4)
	m.WriteBlock(1, []uint64{5, 6, 7, 8})
	txn := &bus.Transaction{Cmd: bus.Read, Block: 1, Requester: 0}
	if !m.Respond(txn) {
		t.Fatal("memory should have supplied")
	}
	if txn.BlockData[1] != 6 {
		t.Errorf("supplied data = %v", txn.BlockData)
	}
	if m.Counts.Get("mem.supply") != 1 {
		t.Error("mem.supply not counted")
	}
}

func TestRespondInhibited(t *testing.T) {
	m := New(g4)
	txn := &bus.Transaction{Cmd: bus.Read, Block: 1, Requester: 0}
	txn.Lines.Inhibit = true
	if m.Respond(txn) {
		t.Error("memory supplied despite inhibit line")
	}
	if txn.BlockData != nil {
		t.Error("memory wrote data despite inhibit")
	}
}

func TestRespondWriteThrough(t *testing.T) {
	m := New(g4)
	txn := &bus.Transaction{Cmd: bus.WriteWord, Addr: 10, Block: g4.BlockOf(10), WordData: 77, Requester: 0}
	m.Respond(txn)
	if v := m.ReadWord(10); v != 77 {
		t.Errorf("write-through value = %d, want 77", v)
	}
}

func TestRespondUpdateWord(t *testing.T) {
	m := New(g4)
	// Dragon-style update: memory NOT updated.
	txn := &bus.Transaction{Cmd: bus.UpdateWord, Addr: 4, Block: 1, WordData: 9}
	m.Respond(txn)
	if v := m.ReadWord(4); v != 0 {
		t.Errorf("Dragon update reached memory: %d", v)
	}
	// Firefly-style update: memory IS updated.
	txn2 := &bus.Transaction{Cmd: bus.UpdateWord, Addr: 4, Block: 1, WordData: 9, MemUpdate: true}
	m.Respond(txn2)
	if v := m.ReadWord(4); v != 9 {
		t.Errorf("Firefly update missed memory: %d", v)
	}
}

func TestRespondFlush(t *testing.T) {
	m := New(g4)
	txn := &bus.Transaction{Cmd: bus.Flush, Block: 2, BlockData: []uint64{1, 1, 2, 3}}
	m.Respond(txn)
	if got := m.ReadBlock(2); got[3] != 3 {
		t.Errorf("flush not applied: %v", got)
	}
}

func TestRespondConcurrentFlush(t *testing.T) {
	// Feature 7: a snooper flushing during a cache-to-cache transfer
	// also updates memory.
	m := New(g4)
	txn := &bus.Transaction{Cmd: bus.Read, Block: 2, Requester: 1}
	txn.Lines.Inhibit = true
	txn.Flushed = true
	txn.BlockData = []uint64{4, 4, 4, 4}
	m.Respond(txn)
	if got := m.ReadBlock(2); got[0] != 4 {
		t.Errorf("concurrent flush not applied: %v", got)
	}
}

func TestRespondLockTagDeniesOthers(t *testing.T) {
	m := New(g4)
	m.SetLockTag(7, LockTag{Locked: true, Owner: 3})
	txn := &bus.Transaction{Cmd: bus.ReadX, Block: 7, Requester: 0}
	if m.Respond(txn) {
		t.Error("memory supplied a memory-locked block to a non-owner")
	}
	if !txn.Lines.Locked {
		t.Error("Locked line not asserted for memory lock tag")
	}
	if tag := m.GetLockTag(7); !tag.Waiter {
		t.Error("denied request did not set the waiter bit")
	}
}

func TestRespondLockTagOwnerReclaims(t *testing.T) {
	m := New(g4)
	m.SetLockTag(7, LockTag{Locked: true, Owner: 3})
	txn := &bus.Transaction{Cmd: bus.ReadX, Block: 7, Requester: 3, UnlockIntent: true}
	if !m.Respond(txn) {
		t.Error("owner could not refetch its memory-locked block")
	}
	if txn.Lines.Locked {
		t.Error("owner refetch saw Locked line")
	}
}

func TestRespondIOWrite(t *testing.T) {
	m := New(g4)
	txn := &bus.Transaction{Cmd: bus.IOWrite, Block: 1, Requester: -1, BlockData: []uint64{9, 8, 7, 6}}
	m.Respond(txn)
	if got := m.ReadBlock(1); got[0] != 9 || got[3] != 6 {
		t.Errorf("IOWrite not applied: %v", got)
	}
}

// Property: a WriteWord followed by ReadWord returns the written value
// and leaves every other word in the block untouched.
func TestWordWriteIsolationProperty(t *testing.T) {
	f := func(rawAddr uint32, v uint64) bool {
		m := New(g4)
		a := addr.Addr(rawAddr)
		m.WriteBlock(g4.BlockOf(a), []uint64{10, 20, 30, 40})
		m.WriteWord(a, v)
		if m.ReadWord(a) != v {
			return false
		}
		blk := m.ReadBlock(g4.BlockOf(a))
		for i, w := range blk {
			if i == g4.Offset(a) {
				continue
			}
			if w != uint64((i+1)*10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: lock tags round-trip and denial marks the waiter exactly
// once per block, independent of requester order.
func TestLockTagDenialProperty(t *testing.T) {
	f := func(owners []uint8, requesters []uint8) bool {
		m := New(g4)
		for i, o := range owners {
			b := addr.Block(i % 8)
			m.SetLockTag(b, LockTag{Locked: true, Owner: int(o % 4)})
			_ = b
		}
		for _, r := range requesters {
			b := addr.Block(int(r) % 8)
			tag := m.GetLockTag(b)
			txn := &bus.Transaction{Cmd: bus.ReadX, Block: b, Requester: int(r % 4)}
			m.Respond(txn)
			newTag := m.GetLockTag(b)
			if !tag.Locked {
				// Unlocked block: never denied.
				if txn.Lines.Locked {
					return false
				}
				continue
			}
			if tag.Owner == int(r%4) {
				// The owner is never denied by its own tag.
				if txn.Lines.Locked && (txn.UnlockIntent || txn.LockIntent) {
					return false
				}
			} else {
				if !txn.Lines.Locked || !newTag.Waiter {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
