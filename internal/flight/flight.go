// Package flight provides single-flight call deduplication: concurrent
// calls with the same key share one execution of the underlying
// function. The daemon uses it to collapse identical in-flight requests
// onto one simulation or model-check run, and the runner's on-disk
// result cache uses it to make concurrent same-key writers race-free —
// one goroutine computes, everyone else waits for the shared result.
//
// Unlike golang.org/x/sync/singleflight (not vendored; the module has
// no external dependencies), followers can abandon the wait when their
// context ends while the leader's execution continues unharmed.
package flight

import (
	"fmt"
	"sync"

	"context"
)

// call is one in-flight execution.
type call[V any] struct {
	done chan struct{} // closed when val/err are final
	val  V
	err  error
}

// Group deduplicates concurrent calls by key. The zero value is ready
// to use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do executes fn, ensuring that among concurrent calls with the same
// key only one executes; the rest wait and receive the same result.
// shared reports whether this caller received another call's result.
// Once the leading call completes, the key is forgotten: a later Do
// with the same key executes again.
func (g *Group[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	return g.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with a caller-scoped wait: a follower whose ctx ends
// before the leader finishes returns ctx.Err() immediately, while the
// leader's execution — governed by whatever context fn itself captured
// — continues for the remaining followers. The leader never aborts on
// ctx here; cancellation of the work belongs inside fn.
func (g *Group[V]) DoCtx(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	defer func() {
		if r := recover(); r != nil {
			// Followers must not hang on a leader panic: record an
			// error for them, then let the panic continue in the leader.
			c.err = fmt.Errorf("flight: leader panicked: %v", r)
			g.forget(key, c)
			panic(r)
		}
		g.forget(key, c)
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}

// forget removes the call and releases its waiters.
func (g *Group[V]) forget(key string, c *call[V]) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}
