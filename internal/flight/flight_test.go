package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group[int]
	var execs atomic.Int64
	gate := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	vals := make([]int, n)
	shareds := make([]bool, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], shareds[i], errs[i] = g.Do("k", func() (int, error) {
				<-gate // hold every caller in the same flight
				execs.Add(1)
				return 42, nil
			})
		}(i)
	}
	// Let the followers pile up behind the leader, then release it.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("executed %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if vals[i] != 42 {
			t.Fatalf("call %d got %d, want 42", i, vals[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers report shared=false, want exactly 1", leaders)
	}
}

func TestDoForgetsKeyAfterCompletion(t *testing.T) {
	var g Group[int]
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do("k", func() (int, error) { execs.Add(1); return i, nil })
		if err != nil || shared || v != i {
			t.Fatalf("call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
	}
	if execs.Load() != 3 {
		t.Fatalf("sequential calls deduplicated: %d executions", execs.Load())
	}
}

func TestDoCtxFollowerAbandonsWait(t *testing.T) {
	var g Group[int]
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	leaderOut := make(chan error, 1)
	go func() {
		_, _, err := g.Do("k", func() (int, error) {
			close(leaderIn)
			<-release
			return 7, nil
		})
		leaderOut <- err
	}()
	<-leaderIn

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.DoCtx(ctx, "k", func() (int, error) { return 0, nil })
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v, want shared deadline error", shared, err)
	}

	// The leader is unharmed by the follower's departure.
	close(release)
	if err := <-leaderOut; err != nil {
		t.Fatalf("leader: %v", err)
	}
}

func TestDoPropagatesErrorToAllCallers(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	boom := fmt.Errorf("boom")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do("k", func() (int, error) { <-gate; return 0, boom })
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err=%v, want boom", i, err)
		}
	}
}

func TestLeaderPanicReleasesFollowers(t *testing.T) {
	var g Group[int]
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	followerRes := make(chan struct {
		shared bool
		err    error
	}, 1)
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		g.Do("k", func() (int, error) { close(leaderIn); <-gate; panic("exploded") })
	}()
	<-leaderIn // the leader is inside fn and owns the key
	go func() {
		_, shared, err := g.Do("k", func() (int, error) { return 0, nil })
		followerRes <- struct {
			shared bool
			err    error
		}{shared, err}
	}()
	time.Sleep(5 * time.Millisecond) // let the follower join the flight
	close(gate)

	if r := <-panicked; r == nil {
		t.Fatal("leader panic swallowed")
	}
	select {
	case r := <-followerRes:
		// Either the follower joined the flight (shared, leader's panic
		// error) or it arrived after the forget and ran its own fn
		// cleanly; it must not hang or see a shared nil error.
		if r.shared && r.err == nil {
			t.Fatal("follower got shared nil error from panicked leader")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("follower hung after leader panic")
	}
}

func TestDistinctKeysRunConcurrently(t *testing.T) {
	var g Group[string]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			v, shared, err := g.Do(key, func() (string, error) { return key, nil })
			if err != nil || shared || v != key {
				t.Errorf("key %s: v=%q shared=%v err=%v", key, v, shared, err)
			}
		}(i)
	}
	wg.Wait()
}
