package cache

import (
	"testing"
	"testing/quick"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/core"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
)

var g = addr.MustGeometry(4, 4)

func newCache(t *testing.T, id int, cfg Config) (*Cache, *memory.Memory) {
	t.Helper()
	mem := memory.New(g)
	return New(id, g, core.Protocol{}, cfg, mem), mem
}

func fullAssoc() Config { return Config{Sets: 1, Ways: 8} }

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero ways did not panic")
		}
	}()
	New(0, g, core.Protocol{}, Config{Sets: 1, Ways: 0}, nil)
}

func TestProbeMissThenInstall(t *testing.T) {
	c, _ := newCache(t, 0, fullAssoc())
	r := c.Probe(protocol.OpRead, 8)
	if r.Hit || r.Cmd != bus.Read {
		t.Fatalf("probe miss: %+v", r)
	}
	if got := c.Counts.Get("proc.miss.read"); got != 1 {
		t.Errorf("miss not counted: %d", got)
	}
	c.Install(2, []uint64{1, 2, 3, 4}, core.RSC)
	if st := c.State(2); st != core.RSC {
		t.Errorf("state after install = %v", st)
	}
	if v, ok := c.ReadWord(9); !ok || v != 2 {
		t.Errorf("ReadWord(9) = %d,%v want 2,true", v, ok)
	}
	r = c.Probe(protocol.OpRead, 8)
	if !r.Hit {
		t.Errorf("probe after install: %+v, want hit", r)
	}
	if got := c.Counts.Get("proc.hit.read"); got != 1 {
		t.Errorf("hit not counted: %d", got)
	}
}

func TestWriteWordMarksUnitDirty(t *testing.T) {
	gu := addr.MustGeometry(4, 2)
	mem := memory.New(gu)
	c := New(0, gu, core.Protocol{}, Config{Sets: 1, Ways: 2, UnitMode: true}, mem)
	c.Install(0, []uint64{0, 0, 0, 0}, core.WSC)
	if !c.WriteWord(3, 7) {
		t.Fatal("WriteWord failed on valid block")
	}
	// Only unit 1 dirty: supply for a request on word 0 moves unit 0
	// (requested) + unit 1 (dirty) = 4 words; a request on word 3
	// moves only unit 1's 2 words... requested unit 1 is also the
	// dirty one.
	if got := c.SupplyWords(0, 0); got != 4 {
		t.Errorf("SupplyWords(word0) = %d, want 4", got)
	}
	if got := c.SupplyWords(0, 3); got != 2 {
		t.Errorf("SupplyWords(word3) = %d, want 2", got)
	}
	if got := c.EvictWords(0); got != 2 {
		t.Errorf("EvictWords = %d, want 2 (one dirty unit)", got)
	}
}

func TestSupplyWordsWholeBlockWithoutUnitMode(t *testing.T) {
	c, _ := newCache(t, 0, fullAssoc())
	c.Install(0, []uint64{1, 2, 3, 4}, core.WSD)
	if got := c.SupplyWords(0, 1); got != 4 {
		t.Errorf("SupplyWords = %d, want 4", got)
	}
	if got := c.EvictWords(0); got != 4 {
		t.Errorf("EvictWords = %d, want 4", got)
	}
}

func TestPrepareFillNoEvictionWhenRoom(t *testing.T) {
	c, _ := newCache(t, 0, Config{Sets: 1, Ways: 2})
	if v := c.PrepareFill(5); v.Needed {
		t.Errorf("empty cache wanted eviction: %+v", v)
	}
	c.Install(5, nil, core.RSC)
	if v := c.PrepareFill(6); v.Needed {
		t.Errorf("half-full cache wanted eviction: %+v", v)
	}
}

func TestPrepareFillEvictsLRU(t *testing.T) {
	c, _ := newCache(t, 0, Config{Sets: 1, Ways: 2})
	c.Install(1, []uint64{1, 1, 1, 1}, core.WSD)
	c.Install(2, []uint64{2, 2, 2, 2}, core.RSC)
	// Touch block 1 so block 2 is LRU.
	c.Probe(protocol.OpRead, g.Base(1))
	v := c.PrepareFill(3)
	if !v.Needed || v.Block != 2 {
		t.Fatalf("victim = %+v, want block 2", v)
	}
	if v.Evict.Writeback {
		t.Errorf("clean victim should not write back: %+v", v.Evict)
	}
	c.Drop(v.Block)
	c.Install(3, nil, core.RSC)
	if c.State(2) != protocol.Invalid {
		t.Error("victim still present")
	}
	if c.State(1) != core.WSD || c.State(3) != core.RSC {
		t.Error("survivor/new block wrong")
	}
}

func TestPrepareFillDirtyVictimNeedsWriteback(t *testing.T) {
	c, _ := newCache(t, 0, Config{Sets: 1, Ways: 1})
	c.Install(1, []uint64{9, 9, 9, 9}, core.WSD)
	v := c.PrepareFill(2)
	if !v.Needed || !v.Evict.Writeback {
		t.Fatalf("dirty victim: %+v", v)
	}
	if v.Data[0] != 9 {
		t.Errorf("victim data = %v", v.Data)
	}
}

func TestPrepareFillLockPurge(t *testing.T) {
	c, _ := newCache(t, 0, Config{Sets: 1, Ways: 1})
	c.Install(4, []uint64{1, 0, 0, 0}, core.LSDW)
	v := c.PrepareFill(5)
	if !v.Needed || !v.Evict.LockPurge || !v.Evict.Waiter {
		t.Fatalf("lock purge victim: %+v", v)
	}
}

func TestSetAssociativityMapping(t *testing.T) {
	c, _ := newCache(t, 0, Config{Sets: 4, Ways: 1})
	// Blocks 0 and 4 collide in set 0; block 1 goes to set 1.
	c.Install(0, nil, core.RSC)
	c.Install(1, nil, core.RSC)
	v := c.PrepareFill(4)
	if !v.Needed || v.Block != 0 {
		t.Fatalf("collision victim = %+v, want block 0", v)
	}
	if v2 := c.PrepareFill(5); !v2.Needed || v2.Block != 1 {
		t.Fatalf("set-1 victim = %+v, want block 1", v2)
	}
}

func TestSnoopReadSuppliesAndDowngrades(t *testing.T) {
	c, _ := newCache(t, 1, fullAssoc())
	c.Install(3, []uint64{7, 8, 9, 10}, core.WSD)
	txn := &bus.Transaction{Cmd: bus.Read, Block: 3, Requester: 0}
	c.Snoop(txn)
	if !txn.Lines.Hit || !txn.Lines.SourceHit || !txn.Lines.Dirty || !txn.Lines.Inhibit {
		t.Errorf("lines = %+v", txn.Lines)
	}
	if txn.BlockData == nil || txn.BlockData[0] != 7 {
		t.Errorf("supplied data = %v", txn.BlockData)
	}
	if c.State(3) != core.R {
		t.Errorf("post-snoop state = %v, want R", c.State(3))
	}
	if len(txn.Suppliers) != 1 || txn.Suppliers[0] != 1 {
		t.Errorf("suppliers = %v", txn.Suppliers)
	}
}

func TestSnoopReadXInvalidatesAndCounts(t *testing.T) {
	c, _ := newCache(t, 1, fullAssoc())
	c.Install(3, []uint64{1, 2, 3, 4}, core.R)
	txn := &bus.Transaction{Cmd: bus.ReadX, Block: 3, Requester: 0}
	c.Snoop(txn)
	if c.State(3) != protocol.Invalid {
		t.Errorf("state = %v, want Invalid", c.State(3))
	}
	if got := c.Counts.Get("snoop.invalidated"); got != 1 {
		t.Errorf("invalidation count = %d", got)
	}
}

func TestSnoopLockedBlockAssertsLine(t *testing.T) {
	c, _ := newCache(t, 1, fullAssoc())
	c.Install(3, []uint64{1, 0, 0, 0}, core.LSD)
	txn := &bus.Transaction{Cmd: bus.ReadX, Block: 3, Requester: 0, LockIntent: true}
	c.Snoop(txn)
	if !txn.Lines.Locked {
		t.Error("Locked line not asserted")
	}
	if c.State(3) != core.LSDW {
		t.Errorf("state = %v, want L.S.D.W", c.State(3))
	}
	if c.Counts.Get("snoop.locked-denial") != 1 {
		t.Error("denial not counted")
	}
}

func TestSnoopMissIsQuiet(t *testing.T) {
	c, _ := newCache(t, 1, fullAssoc())
	txn := &bus.Transaction{Cmd: bus.Read, Block: 3, Requester: 0}
	c.Snoop(txn)
	if txn.Lines.Hit || txn.Lines.SourceHit {
		t.Errorf("lines asserted on miss: %+v", txn.Lines)
	}
	if c.Counts.Get("snoop.tagmatch") != 0 {
		t.Error("tagmatch counted on miss")
	}
}

func TestBusyWaitRegisterWakeupCount(t *testing.T) {
	c, _ := newCache(t, 1, fullAssoc())
	c.BWReg = BusyWaitRegister{Armed: true, Block: 5}
	c.Snoop(&bus.Transaction{Cmd: bus.Unlock, Block: 5, Requester: 0})
	if c.Counts.Get("bwreg.wakeup") != 1 {
		t.Error("wakeup not counted")
	}
	c.Snoop(&bus.Transaction{Cmd: bus.Unlock, Block: 6, Requester: 0})
	if c.Counts.Get("bwreg.wakeup") != 1 {
		t.Error("wakeup counted for wrong block")
	}
}

func TestWriteHitCleanStatistic(t *testing.T) {
	// Feature 3: frequency of write hits to clean blocks.
	c, _ := newCache(t, 0, fullAssoc())
	c.Install(1, nil, core.WSC)
	c.Probe(protocol.OpWrite, g.Base(1)) // clean -> dirty: counted
	c.Probe(protocol.OpWrite, g.Base(1)) // dirty -> dirty: not counted
	if got := c.Counts.Get("dir.write-hit-clean"); got != 1 {
		t.Errorf("dir.write-hit-clean = %d, want 1", got)
	}
}

func TestBlocksSnapshot(t *testing.T) {
	c, _ := newCache(t, 0, fullAssoc())
	c.Install(1, nil, core.RSC)
	c.Install(9, nil, core.WSD)
	m := c.Blocks()
	if len(m) != 2 || m[1] != core.RSC || m[9] != core.WSD {
		t.Errorf("Blocks() = %v", m)
	}
}

func TestDataReturnsCopy(t *testing.T) {
	c, _ := newCache(t, 0, fullAssoc())
	c.Install(1, []uint64{5, 6, 7, 8}, core.RSC)
	d := c.Data(1)
	d[0] = 99
	if v, _ := c.ReadWord(g.Base(1)); v != 5 {
		t.Errorf("Data aliases cache: %d", v)
	}
	if c.Data(42) != nil {
		t.Error("Data of absent block should be nil")
	}
}

func TestInstallZeroesWithoutData(t *testing.T) {
	c, _ := newCache(t, 0, fullAssoc())
	c.Install(1, []uint64{5, 6, 7, 8}, core.WSD)
	c.Drop(1)
	c.Install(1, nil, core.WSD) // WriteNoFetch path
	if v, _ := c.ReadWord(g.Base(1)); v != 0 {
		t.Errorf("reused frame not zeroed: %d", v)
	}
}

func TestSetStateAndDrop(t *testing.T) {
	c, _ := newCache(t, 0, fullAssoc())
	c.Install(1, nil, core.R)
	c.SetState(1, core.WSD)
	if c.State(1) != core.WSD {
		t.Error("SetState ignored")
	}
	c.SetState(1, protocol.Invalid)
	if c.State(1) != protocol.Invalid {
		t.Error("SetState(Invalid) ignored")
	}
	c.Drop(99) // absent: no-op
}

// Property: with W ways, the W most recently touched blocks of a set
// are never the eviction victim.
func TestLRUVictimProperty(t *testing.T) {
	f := func(seq []uint8, waysRaw uint8) bool {
		ways := 2 + int(waysRaw%3) // 2..4
		mem := memory.New(g)
		c := New(0, g, core.Protocol{}, Config{Sets: 1, Ways: ways}, mem)
		touched := []addr.Block{}
		for _, raw := range seq {
			b := addr.Block(raw % 8)
			if c.State(b) == protocol.Invalid {
				if v := c.PrepareFill(b); v.Needed {
					c.Drop(v.Block)
				}
				c.Install(b, nil, core.RSC)
			} else {
				c.Probe(protocol.OpRead, g.Base(b))
			}
			// Track recency.
			for i, tb := range touched {
				if tb == b {
					touched = append(touched[:i], touched[i+1:]...)
					break
				}
			}
			touched = append(touched, b)
		}
		// The victim for a fresh block must not be among the last
		// min(ways-1, len) touched blocks.
		v := c.PrepareFill(99)
		if !v.Needed {
			return true
		}
		recent := touched
		if len(recent) > ways-1 {
			recent = recent[len(recent)-(ways-1):]
		}
		for _, b := range recent {
			if v.Block == b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnitModeBoundaries(t *testing.T) {
	gu := addr.MustGeometry(8, 2)
	mem := memory.New(gu)
	c := New(0, gu, core.Protocol{}, Config{Sets: 1, Ways: 2, UnitMode: true}, mem)
	c.Install(0, nil, core.WSC)
	// Dirty every unit: supply cost = whole block regardless of the
	// requested word.
	for w := 0; w < 8; w++ {
		c.WriteWord(addr.Addr(w), uint64(w))
	}
	if got := c.SupplyWords(0, 3); got != 8 {
		t.Errorf("all-dirty SupplyWords = %d, want 8", got)
	}
	if got := c.EvictWords(0); got != 8 {
		t.Errorf("all-dirty EvictWords = %d, want 8", got)
	}
	// A clean block moves only the requested unit.
	c.Install(1, nil, core.RSC)
	if got := c.SupplyWords(1, gu.Base(1)+5); got != 2 {
		t.Errorf("clean SupplyWords = %d, want 2", got)
	}
	// Absent block: conservative whole-block estimate.
	if got := c.SupplyWords(7, gu.Base(7)); got != 8 {
		t.Errorf("absent SupplyWords = %d, want 8", got)
	}
}

func TestSetUnitDirtyTransfersWithBlock(t *testing.T) {
	gu := addr.MustGeometry(4, 2)
	mem := memory.New(gu)
	c := New(0, gu, core.Protocol{}, Config{Sets: 1, Ways: 2, UnitMode: true}, mem)
	c.Install(0, []uint64{1, 2, 3, 4}, core.RSD)
	c.SetUnitDirty(0, []bool{false, true})
	if got := c.EvictWords(0); got != 2 {
		t.Errorf("EvictWords = %d, want 2 after dirty-unit transfer", got)
	}
	c.SetUnitDirty(99, []bool{true}) // absent: no-op
	c.SetUnitDirty(0, nil)           // nil: no-op
}

func TestReplacementPolicies(t *testing.T) {
	// FIFO evicts the oldest install even if recently touched; LRU
	// evicts the least recently touched.
	mkC := func(r Replacement) *Cache {
		mem := memory.New(g)
		return New(0, g, core.Protocol{}, Config{Sets: 1, Ways: 2, Replace: r}, mem)
	}
	lru := mkC(LRU)
	lru.Install(1, nil, core.RSC)
	lru.Install(2, nil, core.RSC)
	lru.Probe(protocol.OpRead, g.Base(1)) // touch 1: LRU victim is 2
	if v := lru.PrepareFill(3); v.Block != 2 {
		t.Errorf("LRU victim = %d, want 2", v.Block)
	}
	fifo := mkC(FIFO)
	fifo.Install(1, nil, core.RSC)
	fifo.Install(2, nil, core.RSC)
	fifo.Probe(protocol.OpRead, g.Base(1)) // touch does not matter
	if v := fifo.PrepareFill(3); v.Block != 1 {
		t.Errorf("FIFO victim = %d, want 1 (oldest install)", v.Block)
	}
	rnd := mkC(Random)
	rnd.Install(1, nil, core.RSC)
	rnd.Install(2, nil, core.RSC)
	v := rnd.PrepareFill(3)
	if !v.Needed || (v.Block != 1 && v.Block != 2) {
		t.Errorf("Random victim = %+v", v)
	}
	// Random is deterministic per cache.
	rnd2 := mkC(Random)
	rnd2.Install(1, nil, core.RSC)
	rnd2.Install(2, nil, core.RSC)
	if v2 := rnd2.PrepareFill(3); v2.Block != v.Block {
		t.Errorf("Random not deterministic: %d vs %d", v.Block, v2.Block)
	}
	if LRU.String() != "lru" || FIFO.String() != "fifo" || Random.String() != "random" {
		t.Error("replacement names wrong")
	}
}
