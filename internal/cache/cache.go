// Package cache implements the snooping processor cache: a
// set-associative (fully associative when one set) array of lines
// carrying protocol state and real data, the bus-side snoop logic, the
// busy-wait register of the paper's proposal (Section E.4), per-line
// transfer-unit dirty tracking (Section D.3), and the directory-
// interference accounting behind Feature 3.
package cache

import (
	"fmt"
	"sort"

	"cachesync/internal/addr"
	"cachesync/internal/bus"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
	"cachesync/internal/stats"
)

// line is one cache block frame.
type line struct {
	tag       addr.Block
	hasTag    bool // tag is meaningful (even if state is Invalid)
	state     protocol.State
	data      []uint64
	unitDirty []bool
	lru       uint64 // last-touch tick (LRU)
	installed uint64 // install tick (FIFO)
}

func (ln *line) valid() bool { return ln.hasTag && ln.state != protocol.Invalid }

// Precomputed "proc.hit.<op>" / "proc.miss.<op>" / "proc.busop.<op>"
// statistic keys: the probe path runs once per simulated access and
// must not build strings.
const maxCountedOps = 8

var hitCounterNames, missCounterNames, busopCounterNames [maxCountedOps]string

func init() {
	for i := range hitCounterNames {
		s := protocol.Op(i).String()
		hitCounterNames[i] = "proc.hit." + s
		missCounterNames[i] = "proc.miss." + s
		busopCounterNames[i] = "proc.busop." + s
	}
}

// BusyWaitRegister is the special register of Section E.3/E.4: it
// remembers the block a denied lock request targeted and joins the
// next arbitration, at high priority, when the unlock is broadcast.
type BusyWaitRegister struct {
	Armed bool
	Block addr.Block
}

// Replacement selects the victim policy within a set.
type Replacement int

const (
	// LRU evicts the least recently used line — the policy Feature 8's
	// "LRU replacement tends to hold across caches" argument assumes.
	LRU Replacement = iota
	// FIFO evicts the oldest-installed line.
	FIFO
	// Random evicts a pseudo-random line (deterministic per cache).
	Random
)

var replacementNames = [...]string{"lru", "fifo", "random"}

// String implements fmt.Stringer.
func (r Replacement) String() string {
	if int(r) < len(replacementNames) {
		return replacementNames[r]
	}
	return fmt.Sprintf("replacement(%d)", int(r))
}

// Config sizes a cache.
type Config struct {
	Sets int // number of sets; 1 = fully associative
	Ways int // lines per set
	// UnitMode enables transfer-unit cost accounting (Section D.3):
	// bus word costs count only the requested unit plus dirty units
	// rather than the whole block.
	UnitMode bool
	// Replace selects the victim policy (default LRU).
	Replace Replacement
	// NoTables disables the compiled transition tables, keeping every
	// protocol decision on the method path — the oracle side of the
	// table-vs-method differential tests.
	NoTables bool
}

// Victim describes an eviction the engine must carry out before a
// fill can proceed. Data aliases a per-cache scratch buffer that is
// valid only until this cache's next PrepareFill; consumers copy what
// they keep.
type Victim struct {
	Block  addr.Block
	Data   []uint64
	Evict  protocol.Evict
	Needed bool // false: no eviction necessary
}

// Cache is one processor's cache plus its bus controller.
type Cache struct {
	id    int
	geom  addr.Geometry
	proto protocol.Protocol
	tab   *protocol.Table // compiled transition tables; nil = method path
	cfg   Config
	mem   *memory.Memory // flush target for snoop-time flushes

	sets [][]line
	tick uint64
	rng  uint64 // Random replacement state (seeded from the cache ID)

	// idx maps a held tag to its frame, replacing the per-probe (and,
	// worse, per-snoop-per-cache) linear way scan. Each tag lives in
	// exactly one frame — Install reuses the tagged frame when present
	// and PrepareFill only runs when the tag is absent — so the index
	// is maintained at the six tag-mutation points. Frames are
	// allocated once in New and never move, so the pointers stay valid.
	idx *tagIndex

	// mruKey/mruLn cache the last successful lookup (key is block+1; 0
	// means empty): a bus transaction touches the same block several
	// times in a row (reprobe, completion state change, data access),
	// and the repeat lookups skip the hash probe. The entry is valid
	// only while the pair is in idx — idxDel clears a matching entry,
	// and Restore clears it with the index.
	mruKey uint64
	mruLn  *line

	// Resolved stats handles for the per-access and per-snoop counters
	// (see stats.Counters.Handle), filled on first use so a counter
	// still only appears in snapshots once incremented.
	hitH, missH, busopH              [maxCountedOps]*int64
	snoopSeenH, tagmatchH, lockedH   *int64
	supplyH, flushH, updateH, invalH *int64
	wakeupH, dirWHCH                 *int64

	// snoopsInvalid caches Features().SnoopsInvalid: Features() builds
	// its descriptor (including a map) on every call, far too expensive
	// for the per-snoop paths of the simulator and the model checker.
	snoopsInvalid bool

	// victimBuf is the scratch storage behind Victim.Data: at most one
	// eviction is in flight per cache, and both engines consume the
	// victim's data before the next PrepareFill.
	victimBuf []uint64

	BWReg  BusyWaitRegister
	Counts stats.Counters
}

// New builds a cache. mem is the flush target used when the protocol
// flushes during a snoop (Feature 7); it may be nil only if the
// protocol never flushes on snoop.
func New(id int, geom addr.Geometry, proto protocol.Protocol, cfg Config, mem *memory.Memory) *Cache {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	c := &Cache{id: id, geom: geom, proto: proto, cfg: cfg, mem: mem, rng: uint64(id)*2654435761 + 1,
		snoopsInvalid: proto.Features().SnoopsInvalid,
		idx:           newTagIndex(cfg.Sets * cfg.Ways)}
	if !cfg.NoTables {
		c.tab = protocol.TableFor(proto)
	}
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	return c
}

// bump increments the counter behind *h, resolving the handle on
// first use.
func (c *Cache) bump(h **int64, name string) {
	if *h == nil {
		*h = c.Counts.Handle(name)
	}
	**h++
}

// ID implements bus.Snooper.
func (c *Cache) ID() int { return c.id }

// Protocol returns the protocol instance driving this cache.
func (c *Cache) Protocol() protocol.Protocol { return c.proto }

// isDirty consults the compiled table when present.
func (c *Cache) isDirty(st protocol.State) bool {
	if c.tab != nil {
		return c.tab.IsDirty(st)
	}
	return c.proto.IsDirty(st)
}

// Geometry returns the cache's address geometry.
func (c *Cache) Geometry() addr.Geometry { return c.geom }

func (c *Cache) setIndex(b addr.Block) int {
	return int(uint64(b) % uint64(c.cfg.Sets))
}

// find returns the line holding block b. When snoopInvalid is set,
// invalid lines with a matching tag are also returned (Rudolph-Segall
// updates invalid copies, Section E.4). Indexed frames always have
// their tag set — put/del straddle every hasTag mutation — so only the
// state filter applies here.
func (c *Cache) find(b addr.Block, snoopInvalid bool) *line {
	k := uint64(b) + 1
	ln := c.mruLn
	if c.mruKey != k {
		ln = c.idx.get(b)
		if ln != nil {
			c.mruKey, c.mruLn = k, ln
		}
	}
	if ln != nil && (ln.state != protocol.Invalid || snoopInvalid) {
		return ln
	}
	return nil
}

// idxDel removes block b from the tag index, keeping the MRU entry
// consistent. All index removals must go through here.
func (c *Cache) idxDel(b addr.Block) {
	if c.mruKey == uint64(b)+1 {
		c.mruKey, c.mruLn = 0, nil
	}
	c.idx.del(b)
}

// State returns the protocol state of block b (Invalid if absent).
func (c *Cache) State(b addr.Block) protocol.State {
	if ln := c.find(b, false); ln != nil {
		return ln.state
	}
	return protocol.Invalid
}

// Blocks returns every valid block and its state, for invariant checks.
func (c *Cache) Blocks() map[addr.Block]protocol.State {
	out := make(map[addr.Block]protocol.State)
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid() {
				out[set[i].tag] = set[i].state
			}
		}
	}
	return out
}

// Data returns a copy of block b's cached data, or nil if not valid.
func (c *Cache) Data(b addr.Block) []uint64 {
	ln := c.find(b, false)
	if ln == nil {
		return nil
	}
	out := make([]uint64, len(ln.data))
	copy(out, ln.data)
	return out
}

// DataView returns block b's cached data without copying, or nil if
// not valid. The slice aliases the live line — callers must treat it
// as read-only and must not hold it across cache mutations. It exists
// for the hot paths of the coherence checker and the model checker,
// which inspect every block after every transition.
func (c *Cache) DataView(b addr.Block) []uint64 {
	if ln := c.find(b, false); ln != nil {
		return ln.data
	}
	return nil
}

func (c *Cache) touch(ln *line) {
	c.tick++
	ln.lru = c.tick
}

// Probe runs a processor access against the cache. On a hit the state
// transition is applied and hit statistics recorded; on a miss (or a
// hit that needs the bus) the returned ProcResult carries the bus
// command to issue.
func (c *Cache) Probe(op protocol.Op, a addr.Addr) protocol.ProcResult {
	r, _ := c.probe(op, a, true)
	return r
}

// Reprobe is Probe without statistics: the engine re-runs the access
// at bus-grant time, because snooped transactions may have changed the
// line state since the original probe.
func (c *Cache) Reprobe(op protocol.Op, a addr.Addr) protocol.ProcResult {
	r, _ := c.probe(op, a, false)
	return r
}

// ProbeWord is Probe fused with the hit-time data access: on a hit a
// write-class op stores v (marking the transfer unit dirty) and a
// read-class op loads the word, reusing the probe's tag lookup instead
// of a second one. The returned value is the loaded word (reads) or v
// (writes); it is meaningless on a miss. Not for OpWriteBlock, whose
// hit action spans the whole block.
func (c *Cache) ProbeWord(op protocol.Op, a addr.Addr, v uint64) (protocol.ProcResult, uint64) {
	r, ln := c.probe(op, a, true)
	if !r.Hit {
		return r, 0
	}
	off := c.geom.Offset(a)
	if op.IsWrite() {
		ln.data[off] = v
		ln.unitDirty[c.geom.UnitOf(a)] = true
		return r, v
	}
	return r, ln.data[off]
}

func (c *Cache) probe(op protocol.Op, a addr.Addr, count bool) (protocol.ProcResult, *line) {
	b := c.geom.BlockOf(a)
	st := protocol.Invalid
	ln := c.find(b, false)
	if ln != nil {
		st = ln.state
	}
	var r protocol.ProcResult
	if c.tab != nil {
		r = c.tab.ProcAccess(st, op)
	} else {
		r = c.proto.ProcAccess(st, op)
	}
	if r.Hit {
		if ln == nil {
			panic(fmt.Sprintf("cache %d: protocol %s reported hit on absent block %d (op %s)",
				c.id, c.proto.Name(), b, op))
		}
		if count {
			c.bump(&c.hitH[op], hitCounterNames[op])
			// Feature 3 statistic: frequency of write hits to clean
			// blocks (the events that update dirty status in the bus
			// directory).
			if op.IsWrite() && !c.isDirty(st) && c.isDirty(r.NewState) {
				c.bump(&c.dirWHCH, "dir.write-hit-clean")
			}
		}
		ln.state = r.NewState
		c.touch(ln)
	} else if count {
		if ln == nil {
			c.bump(&c.missH[op], missCounterNames[op])
		} else {
			c.bump(&c.busopH[op], busopCounterNames[op])
		}
	}
	return r, ln
}

// SetUnitDirty overrides block b's per-unit dirty bits (used when
// dirty status transfers with the block, Feature 7 "NF,S").
func (c *Cache) SetUnitDirty(b addr.Block, dirty []bool) {
	ln := c.find(b, false)
	if ln == nil || dirty == nil {
		return
	}
	copy(ln.unitDirty, dirty)
}

// PrepareFill reports the eviction (if any) required before block b
// can be installed. The victim line is not yet cleared; the engine
// performs the writeback and then calls Drop.
func (c *Cache) PrepareFill(b addr.Block) Victim {
	if c.find(b, true) != nil {
		return Victim{}
	}
	set := c.sets[c.setIndex(b)]
	// Prefer an unused frame, then an invalid (tag-only) frame, then
	// the LRU valid line.
	var victim *line
	for i := range set {
		ln := &set[i]
		if !ln.hasTag {
			return Victim{}
		}
		if !ln.valid() {
			victim = ln
			break
		}
	}
	if victim == nil {
		switch c.cfg.Replace {
		case FIFO:
			for i := range set {
				ln := &set[i]
				if victim == nil || ln.installed < victim.installed {
					victim = ln
				}
			}
		case Random:
			c.rng = c.rng*6364136223846793005 + 1442695040888963407
			victim = &set[int(c.rng>>33)%len(set)]
		default: // LRU
			for i := range set {
				ln := &set[i]
				if victim == nil || ln.lru < victim.lru {
					victim = ln
				}
			}
		}
	}
	if !victim.valid() {
		// Invalid tag-only frame: reusable with no obligations.
		c.idxDel(victim.tag)
		victim.hasTag = false
		return Victim{}
	}
	var ev protocol.Evict
	if c.tab != nil {
		ev = c.tab.Evict(victim.state)
	} else {
		ev = c.proto.Evict(victim.state)
	}
	if cap(c.victimBuf) < len(victim.data) {
		c.victimBuf = make([]uint64, len(victim.data))
	}
	data := c.victimBuf[:len(victim.data)]
	copy(data, victim.data)
	return Victim{Block: victim.tag, Data: data, Evict: ev, Needed: true}
}

// EvictWords returns the number of bus words a writeback of block b
// costs (dirty units only in unit mode, whole block otherwise).
func (c *Cache) EvictWords(b addr.Block) int {
	ln := c.find(b, false)
	if ln == nil {
		return c.geom.BlockWords
	}
	if !c.cfg.UnitMode {
		return c.geom.BlockWords
	}
	n := 0
	for _, d := range ln.unitDirty {
		if d {
			n += c.geom.TransferWords
		}
	}
	if n == 0 {
		n = c.geom.TransferWords
	}
	return n
}

// Drop invalidates block b (post-eviction, or I/O invalidation).
func (c *Cache) Drop(b addr.Block) {
	if ln := c.find(b, true); ln != nil {
		c.idxDel(ln.tag)
		ln.hasTag = false
		ln.state = protocol.Invalid
	}
}

// Install places block b into the cache with the given state and
// data, evicting nothing: the engine must have handled the victim via
// PrepareFill/Drop first. Passing nil data installs zeroed data (used
// by WriteNoFetch, Feature 9).
func (c *Cache) Install(b addr.Block, data []uint64, st protocol.State) {
	ln := c.find(b, true)
	if ln == nil {
		set := c.sets[c.setIndex(b)]
		for i := range set {
			if !set[i].hasTag {
				ln = &set[i]
				break
			}
		}
		if ln == nil {
			panic(fmt.Sprintf("cache %d: Install(%d) with no free frame; PrepareFill not honored", c.id, b))
		}
	}
	ln.hasTag = true
	ln.tag = b
	c.idx.put(b, ln)
	ln.state = st
	if ln.data == nil || len(ln.data) != c.geom.BlockWords {
		ln.data = make([]uint64, c.geom.BlockWords)
	}
	if data != nil {
		copy(ln.data, data)
	} else {
		for i := range ln.data {
			ln.data[i] = 0
		}
	}
	if len(ln.unitDirty) != c.geom.Units() {
		ln.unitDirty = make([]bool, c.geom.Units())
	} else {
		for i := range ln.unitDirty {
			ln.unitDirty[i] = false
		}
	}
	c.tick++
	ln.installed = c.tick
	ln.lru = c.tick
}

// LineSnapshot is the restorable state of one occupied cache frame:
// the block tag, the protocol state (Invalid for a tag-only frame kept
// for invalid-line snooping), and the data words. Snapshot/Restore are
// the state hooks of the bounded model checker (internal/mcheck),
// which needs to re-materialize a cache at an arbitrary explored
// state.
type LineSnapshot struct {
	Block addr.Block
	State protocol.State
	Data  []uint64
}

// Snapshot captures every occupied frame (including tag-only invalid
// frames, which matter to protocols that snoop invalid lines), sorted
// by block for a canonical encoding.
func (c *Cache) Snapshot() []LineSnapshot {
	var out []LineSnapshot
	for _, set := range c.sets {
		for i := range set {
			ln := &set[i]
			if !ln.hasTag {
				continue
			}
			data := make([]uint64, len(ln.data))
			copy(data, ln.data)
			out = append(out, LineSnapshot{Block: ln.tag, State: ln.state, Data: data})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

// Restore clears the cache and installs exactly the given frames
// (LRU/FIFO bookkeeping restarts; the busy-wait register disarms). It
// panics when a set overflows, which means the snapshot never came
// from a cache of this shape.
func (c *Cache) Restore(lines []LineSnapshot) {
	// Reset every frame but keep its data/unitDirty storage: Restore is
	// the model checker's per-transition hot path.
	c.idx.reset()
	c.mruKey, c.mruLn = 0, nil
	for _, set := range c.sets {
		for i := range set {
			ln := &set[i]
			ln.hasTag = false
			ln.tag = 0
			ln.state = protocol.Invalid
			ln.lru = 0
			ln.installed = 0
		}
	}
	c.tick = 0
	c.BWReg = BusyWaitRegister{}
	for _, snap := range lines {
		set := c.sets[c.setIndex(snap.Block)]
		var ln *line
		for i := range set {
			if !set[i].hasTag {
				ln = &set[i]
				break
			}
		}
		if ln == nil {
			panic(fmt.Sprintf("cache %d: Restore overflows set %d", c.id, c.setIndex(snap.Block)))
		}
		c.tick++
		ln.hasTag = true
		ln.tag = snap.Block
		c.idx.put(snap.Block, ln)
		ln.state = snap.State
		if len(ln.data) != c.geom.BlockWords {
			ln.data = make([]uint64, c.geom.BlockWords)
		} else {
			for i := range ln.data {
				ln.data[i] = 0
			}
		}
		copy(ln.data, snap.Data)
		if len(ln.unitDirty) != c.geom.Units() {
			ln.unitDirty = make([]bool, c.geom.Units())
		} else {
			for i := range ln.unitDirty {
				ln.unitDirty[i] = false
			}
		}
		ln.lru = c.tick
		ln.installed = c.tick
	}
}

// FrameView returns the state and a read-only data view of the frame
// holding block b — including a tag-only invalid frame kept for
// invalid-line snooping — or ok=false when b occupies no frame. It is
// the no-copy accessor of the model checker's state encoder.
func (c *Cache) FrameView(b addr.Block) (st protocol.State, data []uint64, ok bool) {
	if ln := c.find(b, true); ln != nil {
		return ln.state, ln.data, true
	}
	return protocol.Invalid, nil, false
}

// SetState forces block b's state (used by Finish after bus
// completion and by scenario tests).
func (c *Cache) SetState(b addr.Block, st protocol.State) {
	ln := c.find(b, true)
	if ln == nil {
		panic(fmt.Sprintf("cache %d: SetState on absent block %d", c.id, b))
	}
	ln.state = st
	if st == protocol.Invalid && !c.snoopsInvalid {
		// Keep the tag only if invalid lines snoop.
		c.idxDel(ln.tag)
		ln.hasTag = false
	}
	c.touch(ln)
}

// ReadWord returns the cached word at a; ok is false when the block
// is not valid here.
func (c *Cache) ReadWord(a addr.Addr) (v uint64, ok bool) {
	ln := c.find(c.geom.BlockOf(a), false)
	if ln == nil {
		return 0, false
	}
	return ln.data[c.geom.Offset(a)], true
}

// WriteWord stores v at a in the cached copy, marking the transfer
// unit dirty; ok is false when the block is not valid here.
func (c *Cache) WriteWord(a addr.Addr, v uint64) bool {
	ln := c.find(c.geom.BlockOf(a), false)
	if ln == nil {
		return false
	}
	ln.data[c.geom.Offset(a)] = v
	ln.unitDirty[c.geom.UnitOf(a)] = true
	return true
}

// SupplyWords returns the bus word cost of this cache supplying block
// b for a request on word a (Section D.3: requested unit plus all
// dirty units in unit mode; the whole block otherwise).
func (c *Cache) SupplyWords(b addr.Block, a addr.Addr) int {
	if !c.cfg.UnitMode {
		return c.geom.BlockWords
	}
	ln := c.find(b, false)
	if ln == nil {
		return c.geom.BlockWords
	}
	want := make([]bool, c.geom.Units())
	want[c.geom.UnitOf(a)] = true
	for u, d := range ln.unitDirty {
		if d {
			want[u] = true
		}
	}
	n := 0
	for _, w := range want {
		if w {
			n += c.geom.TransferWords
		}
	}
	return n
}

// Snoop implements bus.Snooper: it runs the protocol's bus-side logic
// against the local copy of t.Block and applies the outcome — line
// assertions, data supply, snoop-time flush, word updates, state
// changes, and the busy-wait register reaction to Unlock broadcasts.
func (c *Cache) Snoop(t *bus.Transaction) {
	c.bump(&c.snoopSeenH, "snoop.seen")

	// The busy-wait register watches Unlock broadcasts regardless of
	// line state (the line is typically invalid while waiting).
	if t.Cmd == bus.Unlock && c.BWReg.Armed && c.BWReg.Block == t.Block {
		c.bump(&c.wakeupH, "bwreg.wakeup")
	}

	ln := c.find(t.Block, c.snoopsInvalid)
	if ln == nil {
		return
	}
	c.bump(&c.tagmatchH, "snoop.tagmatch")

	var res protocol.SnoopResult
	if c.tab != nil {
		res = c.tab.Snoop(ln.state, t)
	} else {
		res = c.proto.Snoop(ln.state, t)
	}

	if res.Hit {
		t.Lines.Hit = true
	}
	if res.Locked {
		t.Lines.Locked = true
		c.bump(&c.lockedH, "snoop.locked-denial")
	}
	if res.Supply {
		t.Lines.SourceHit = true
		t.Lines.Inhibit = true
		if res.Dirty {
			t.Lines.Dirty = true
		}
		t.Suppliers = append(t.Suppliers, c.id)
		if t.BlockData == nil {
			t.SupplyBlock(ln.data)
			t.SupplyWordCount = c.SupplyWords(t.Block, t.Addr)
			if res.Dirty {
				t.SupplyDirty(ln.unitDirty)
			}
		}
		c.bump(&c.supplyH, "snoop.supply")
	}
	if res.Flush {
		t.Flushed = true
		if t.BlockData == nil {
			t.SupplyBlock(ln.data)
		}
		if c.mem != nil && t.Cmd == bus.None {
			// Direct flush outside a bus transaction (tests only).
			c.mem.WriteBlock(t.Block, ln.data)
		}
		c.bump(&c.flushH, "snoop.flush")
	}
	if res.UpdateWord || res.TakeWord {
		ln.data[c.geom.Offset(t.Addr)] = t.WordData
		c.bump(&c.updateH, "snoop.update")
	}

	if ln.state != protocol.Invalid && res.NewState == protocol.Invalid {
		c.bump(&c.invalH, "snoop.invalidated")
	}
	ln.state = res.NewState
	if res.NewState == protocol.Invalid && !c.snoopsInvalid {
		c.idxDel(ln.tag)
		ln.hasTag = false
	}
}
