package cache

import (
	"math/bits"

	"cachesync/internal/addr"
)

// tagIndex maps a held tag to its frame: a fixed-capacity
// open-addressing table with linear probing and backward-shift
// deletion. It replaces the runtime map on the per-probe and
// per-snoop-per-cache paths — the hottest lookups in the engine.
// Capacity is fixed at twice the frame count (a tag occupies exactly
// one frame, so the population never exceeds Sets×Ways), keeping the
// load factor at or below one half and probe chains short.
type tagIndex struct {
	keys  []uint64 // block+1; 0 marks an empty slot
	vals  []*line
	mask  uint64
	shift uint
}

// tagHashMult is 2^64 divided by the golden ratio: Fibonacci hashing
// spreads consecutive block numbers across the table's high bits.
const tagHashMult = 0x9e3779b97f4a7c15

func newTagIndex(frames int) *tagIndex {
	n := 8
	for n < 2*frames {
		n <<= 1
	}
	return &tagIndex{
		keys:  make([]uint64, n),
		vals:  make([]*line, n),
		mask:  uint64(n - 1),
		shift: uint(64 - bits.TrailingZeros(uint(n))),
	}
}

func (ti *tagIndex) home(k uint64) uint64 { return (k * tagHashMult) >> ti.shift }

func (ti *tagIndex) get(b addr.Block) *line {
	k := uint64(b) + 1
	for i := ti.home(k); ; i = (i + 1) & ti.mask {
		switch ti.keys[i] {
		case k:
			return ti.vals[i]
		case 0:
			return nil
		}
	}
}

func (ti *tagIndex) put(b addr.Block, ln *line) {
	k := uint64(b) + 1
	for i := ti.home(k); ; i = (i + 1) & ti.mask {
		if ti.keys[i] == k || ti.keys[i] == 0 {
			ti.keys[i] = k
			ti.vals[i] = ln
			return
		}
	}
}

func (ti *tagIndex) del(b addr.Block) {
	k := uint64(b) + 1
	i := ti.home(k)
	for ti.keys[i] != k {
		if ti.keys[i] == 0 {
			return
		}
		i = (i + 1) & ti.mask
	}
	// Backward-shift deletion: pull every displaced follower of the
	// probe chain into the vacated slot, so lookups need no tombstones.
	j := i
	for {
		ti.keys[i], ti.vals[i] = 0, nil
		for {
			j = (j + 1) & ti.mask
			if ti.keys[j] == 0 {
				return
			}
			h := ti.home(ti.keys[j])
			if (j-h)&ti.mask >= (j-i)&ti.mask {
				break
			}
		}
		ti.keys[i], ti.vals[i] = ti.keys[j], ti.vals[j]
		i = j
	}
}

func (ti *tagIndex) reset() {
	clear(ti.keys)
	clear(ti.vals)
}
