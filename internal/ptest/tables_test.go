package ptest

import (
	"context"
	"strings"
	"testing"

	"cachesync"
	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
	"cachesync/internal/simrun"
	"cachesync/internal/workload"
)

// The table-vs-method differential: every protocol runs the same
// workload twice, once on the compiled transition tables and once on
// the method path (cache.Config.NoTables, the oracle), and the two
// runs must be indistinguishable — byte-identical bus logs and
// rendered statistics, and identical final cache states, cache data,
// and memory images. The tables are generated from the methods by
// exhaustive enumeration (internal/protocol/table.go), so any
// divergence here is a compiler bug, not a protocol disagreement.

// tableDiffRun executes the mixed workload on one path and returns
// everything observable: the bus event log, the rendered statistics,
// and the final machine image.
func tableDiffRun(t *testing.T, p protocol.Protocol, noTables bool, seed int64) (logText, statsText, image string) {
	t.Helper()
	cfg := sim.DefaultConfig(p)
	cfg.Procs = 4
	if p.Features().OneWordBlocks {
		cfg.Geometry = addr.MustGeometry(1, 1)
	}
	cfg.Cache = cache.Config{Sets: 1, Ways: 4, NoTables: noTables}
	s := sim.New(cfg)
	evlog := s.AttachLog(1 << 20)
	progs := workload.Mixed{Ops: 300, SharedBlocks: 6, PrivBlocks: 8,
		SharedFrac: 0.4, WriteFrac: 0.4, Seed: seed}.Programs(workload.Layout{G: s.Geometry()}, cfg.Procs)
	if err := s.RunPrograms(progs); err != nil {
		t.Fatalf("%s (notables=%v): %v", p.Name(), noTables, err)
	}
	var lb strings.Builder
	if err := evlog.Dump(&lb); err != nil {
		t.Fatal(err)
	}
	blocks := 6 + 8*cfg.Procs + 2 // the mixed workload's address pool
	return lb.String(), cachesync.RenderStats(s.Stats().Snapshot()), machineImage(s, cfg.Procs, blocks)
}

// machineImage renders cache states, cache data, and memory contents
// into one comparable string.
func machineImage(s *sim.System, procs, blocks int) string {
	var b strings.Builder
	p := s.Protocol()
	for c := 0; c < procs; c++ {
		for blk := 0; blk < blocks; blk++ {
			st := s.Caches[c].State(addr.Block(blk))
			writeKV(&b, "cache", c, blk, p.StateName(st), nil)
			if st != protocol.Invalid {
				writeKV(&b, "data", c, blk, "", s.Caches[c].Data(addr.Block(blk)))
			}
		}
	}
	for blk := 0; blk < blocks; blk++ {
		writeKV(&b, "mem", 0, blk, "", s.Mem.ReadBlock(addr.Block(blk)))
	}
	return b.String()
}

func writeKV(b *strings.Builder, kind string, c, blk int, s string, words []uint64) {
	b.WriteString(kind)
	b.WriteByte(' ')
	b.WriteByte(byte('0' + c))
	b.WriteByte(':')
	writeInt(b, blk)
	if s != "" {
		b.WriteByte(' ')
		b.WriteString(s)
	}
	for _, w := range words {
		b.WriteByte(' ')
		writeInt(b, int(w))
	}
	b.WriteByte('\n')
}

func writeInt(b *strings.Builder, v int) {
	if v >= 10 {
		writeInt(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}

// TestTableVsMethodDifferential runs the differential for every
// registered protocol over several seeds.
func TestTableVsMethodDifferential(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			for _, seed := range seeds {
				mLog, mStats, mImg := tableDiffRun(t, p, true, seed) // method oracle
				tLog, tStats, tImg := tableDiffRun(t, p, false, seed)
				if mLog != tLog {
					t.Errorf("seed %d: bus logs diverge between table and method paths", seed)
				}
				if mStats != tStats {
					t.Errorf("seed %d: statistics diverge:\n--- method ---\n%s\n--- table ---\n%s", seed, mStats, tStats)
				}
				if mImg != tImg {
					t.Errorf("seed %d: final machine images diverge:\n--- method ---\n%s\n--- table ---\n%s", seed, mImg, tImg)
				}
			}
		})
	}
}

// TestTableVsMethodLockWorkload repeats the differential over the
// lock-contention workload through the simrun layer (the daemon/CLI
// path), covering the hardware-lock and syncprim-lowered lock
// transitions the mixed workload never issues. The full rendered
// report — bus log, cycle count, statistics — must match bytewise.
func TestTableVsMethodLockWorkload(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			base := simrun.Config{Protocol: name, Procs: 4, Workload: "lock",
				Iters: 12, LogN: 4096}.Normalize()
			oracle := base
			oracle.NoTables = true
			mRes, err := simrun.Run(context.Background(), oracle)
			if err != nil {
				t.Fatal(err)
			}
			tRes, err := simrun.Run(context.Background(), base)
			if err != nil {
				t.Fatal(err)
			}
			if mRes.Output != tRes.Output {
				t.Errorf("rendered reports diverge between table and method paths")
			}
			if mRes.Cycles != tRes.Cycles {
				t.Errorf("cycles diverge: method %d, table %d", mRes.Cycles, tRes.Cycles)
			}
		})
	}
}
