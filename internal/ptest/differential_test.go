package ptest

import (
	"testing"

	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
)

// TestDifferentialSimMcheck cross-checks the two implementations of
// the paper's bus semantics — the discrete-event engine and the model
// checker's atomic-step executor — on seeded random traces, for every
// registered protocol.
func TestDifferentialSimMcheck(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, name := range all.Everything {
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			for _, seed := range seeds {
				RunDifferential(t, p, DefaultDiffOptions(seed))
			}
		})
	}
}

// TestDifferentialHarnessDetectsSeededBug guards the harness against
// vacuousness: replaying generated traces on a protocol with a seeded
// coherence bug must trip the per-step invariant assertions for some
// seed.
func TestDifferentialHarnessDetectsSeededBug(t *testing.T) {
	p, err := mcheck.Mutate(protocol.MustNew("bitar"), "drop-invalidate")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 20; seed++ {
		o := DefaultDiffOptions(seed)
		rep := mcheck.NewReplayer(mcheck.Options{
			Protocol: p, Procs: o.Procs, Blocks: o.Blocks, Words: o.Words,
		})
		for _, a := range GenTrace(p, o) {
			_, viols, err := rep.Apply(a)
			if err != nil {
				break
			}
			if len(viols) > 0 {
				return // detected
			}
		}
	}
	t.Fatal("no seed exposed the drop-invalidate bug; the harness's invariant checks are vacuous")
}

// TestGenTraceIsDeterministic pins the generator: the same seed must
// yield the same trace (the harness's failures must be reproducible).
func TestGenTraceIsDeterministic(t *testing.T) {
	p := protocol.MustNew("bitar")
	a := GenTrace(p, DefaultDiffOptions(7))
	b := GenTrace(p, DefaultDiffOptions(7))
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d differs: %v vs %v", i+1, a[i], b[i])
		}
	}
}
