package ptest

import (
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/all"
	"cachesync/internal/sim"
)

// TestConformanceSingleWriter runs the single-writer monotonic-read
// workload over every protocol with several seeds and checks the
// post-run coherence invariants.
func TestConformanceSingleWriter(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			for seed := int64(1); seed <= 5; seed++ {
				s := RunSingleWriterMonotonic(t, p, DefaultOptions(seed))
				CheckInvariants(t, s)
			}
		})
	}
}

// TestConformanceRMW checks exact atomic counter totals under
// contention for every protocol.
func TestConformanceRMW(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			for seed := int64(1); seed <= 3; seed++ {
				s := RunRMWCounters(t, p, DefaultOptions(seed))
				CheckInvariants(t, s)
			}
		})
	}
}

// TestConformanceMigration checks the process-migration occasion of
// Section C.3 for every protocol.
func TestConformanceMigration(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			s := RunMigration(t, p, DefaultOptions(42))
			CheckInvariants(t, s)
		})
	}
}

// TestConformanceTinyCaches forces heavy eviction traffic (one-way
// caches) to exercise writebacks and refetches.
func TestConformanceTinyCaches(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			o := DefaultOptions(7)
			o.CacheWays = 1
			o.OpsPerProc = 80
			s := RunSingleWriterMonotonic(t, p, o)
			CheckInvariants(t, s)
		})
	}
}

// TestConformanceManyProcs widens the machine.
func TestConformanceManyProcs(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			o := DefaultOptions(11)
			o.Procs = 8
			o.OpsPerProc = 60
			s := RunRMWCounters(t, p, o)
			CheckInvariants(t, s)
		})
	}
}

// TestConformanceOnline runs a workload with the coherence checker
// attached to every transaction, so a transient violation — one that
// self-corrects before quiescence — is still caught.
func TestConformanceOnline(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			o := DefaultOptions(13)
			o.OpsPerProc = 60
			s := NewSystem(p, o)
			AttachOnlineChecker(t, s)
			// Inline single-writer workload (RunSingleWriterMonotonic
			// builds its own system, so rebuild the pattern here).
			g := s.Geometry()
			ws := make([]func(*sim.Proc), o.Procs)
			for i := range ws {
				i := i
				ws[i] = func(pr *sim.Proc) {
					myWord := addr.Addr(i % g.BlockWords)
					for k := 0; k < o.OpsPerProc; k++ {
						blk := addr.Block((k*3 + i) % o.Blocks)
						if k%2 == 0 && i < g.BlockWords {
							pr.Write(g.Base(blk)+myWord, uint64(k))
						} else {
							pr.Read(g.Base(blk))
						}
						if k%6 == 0 {
							pr.RMW(g.Base(addr.Block(o.Blocks)), func(v uint64) uint64 { return v + 1 })
						}
					}
				}
			}
			if err := s.Run(ws); err != nil {
				t.Fatal(err)
			}
			CheckInvariants(t, s)
		})
	}
}

// TestConformanceIOInjection interleaves I/O-processor transfers —
// inputs that overwrite blocks and invalidate caches, page-outs, and
// non-paging outputs (Section E.2) — with ordinary traffic, and
// checks coherence both online and at quiescence.
func TestConformanceIOInjection(t *testing.T) {
	for _, name := range all.Everything {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocol.MustNew(name)
			o := DefaultOptions(17)
			o.Procs = 3
			s := NewSystem(p, o)
			AttachOnlineChecker(t, s)
			g := s.Geometry()
			ioVals := make([]uint64, g.BlockWords)
			for i := range ioVals {
				ioVals[i] = 7777
			}
			ws := make([]func(*sim.Proc), o.Procs)
			for i := 0; i < o.Procs-1; i++ {
				i := i
				ws[i] = func(pr *sim.Proc) {
					for k := 0; k < 60; k++ {
						blk := addr.Block((k + i) % o.Blocks)
						if (k+i)%3 == 0 {
							pr.Write(g.Base(blk)+addr.Addr(i%g.BlockWords), uint64(k))
						} else {
							pr.Read(g.Base(blk))
						}
					}
				}
			}
			// The last processor acts as the I/O processor.
			ws[o.Procs-1] = func(pr *sim.Proc) {
				for k := 0; k < 20; k++ {
					blk := addr.Addr(g.Base(addr.Block(k % o.Blocks)))
					switch k % 3 {
					case 0:
						pr.IO(sim.IOInput, blk, ioVals)
					case 1:
						pr.IO(sim.IOOutput, blk, nil)
					case 2:
						pr.IO(sim.IOPageOut, blk, nil)
					}
					pr.Compute(15)
				}
			}
			if err := s.Run(ws); err != nil {
				t.Fatal(err)
			}
			CheckInvariants(t, s)
		})
	}
}
