// Package ptest is the protocol conformance harness: it runs
// randomized workloads against every registered protocol and checks
// the paper's two implementation requirements (Section C.1) as
// machine-checkable invariants —
//
//  1. conflicting accesses are serialized (single-writer, exact RMW
//     and lock counter totals, monotonic single-writer reads), and
//  2. every access sees the latest version of the data (clean copies
//     match memory, all copies identical under update protocols,
//     dirty data is never lost).
package ptest

import (
	"fmt"
	"math/rand"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/coherence"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
)

// Options sizes a conformance run.
type Options struct {
	Procs      int
	Blocks     int // size of the shared address pool, in blocks
	OpsPerProc int
	Seed       int64
	CacheWays  int // small values force evictions
}

// DefaultOptions returns a contentious little machine.
func DefaultOptions(seed int64) Options {
	return Options{Procs: 4, Blocks: 8, OpsPerProc: 150, Seed: seed, CacheWays: 4}
}

// NewSystem builds a sim.System for the protocol with geometry
// adjusted for its constraints.
func NewSystem(p protocol.Protocol, o Options) *sim.System {
	cfg := sim.DefaultConfig(p)
	cfg.Procs = o.Procs
	if p.Features().OneWordBlocks {
		cfg.Geometry = addr.MustGeometry(1, 1)
	}
	cfg.Cache = cache.Config{Sets: 1, Ways: o.CacheWays}
	return sim.New(cfg)
}

// CheckInvariants verifies the post-quiescence coherence invariants
// (delegating to internal/coherence).
func CheckInvariants(t *testing.T, s *sim.System) {
	t.Helper()
	for _, v := range coherence.Check(s) {
		t.Errorf("%s: %s", s.Protocol().Name(), v)
	}
}

// AttachOnlineChecker wires the coherence checker to run after every
// bus transaction; violations fail the test at the moment they
// appear, not just at quiescence.
func AttachOnlineChecker(t *testing.T, s *sim.System) {
	t.Helper()
	s.OnTxn = func() {
		for _, v := range coherence.Check(s) {
			t.Errorf("online (%s, cycle %d): %s", s.Protocol().Name(), s.Clock(), v)
		}
	}
}

// RunSingleWriterMonotonic runs the single-writer/many-reader
// workload: processor i owns word i of every block (forcing false
// sharing within blocks) and writes an increasing sequence to it;
// every processor reads the other processors' words and asserts the
// values never go backwards. A stale read — a violation of the
// latest-version requirement — shows up as a decrease.
func RunSingleWriterMonotonic(t *testing.T, p protocol.Protocol, o Options) *sim.System {
	t.Helper()
	s := NewSystem(p, o)
	g := s.Geometry()
	// Address ownership: processor i owns word i%bw of the blocks in
	// its group. With wide blocks every processor hits every block
	// (false sharing); with one-word blocks (Rudolph-Segall) ownership
	// degenerates to whole blocks, keeping the single-writer property.
	groups := (o.Procs + g.BlockWords - 1) / g.BlockWords
	ws := make([]func(*sim.Proc), o.Procs)
	errCh := make(chan error, o.Procs)
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(o.Seed + int64(i)))
		ws[i] = func(pr *sim.Proc) {
			last := make(map[addr.Addr]uint64)
			seq := uint64(0)
			myWord := addr.Addr(i % g.BlockWords)
			myGroup := i / g.BlockWords
			for k := 0; k < o.OpsPerProc; k++ {
				if rng.Intn(2) == 0 {
					// Write my own word of a block in my group.
					blk := addr.Block(rng.Intn((o.Blocks+groups-1)/groups)*groups + myGroup)
					seq++
					pr.Write(g.Base(blk)+myWord, seq)
				} else {
					// Read someone's word of a random block.
					blk := addr.Block(rng.Intn(o.Blocks))
					w := addr.Addr(rng.Intn(g.BlockWords))
					a := g.Base(blk) + w
					v := pr.Read(a)
					if prev, ok := last[a]; ok && v < prev {
						errCh <- fmt.Errorf("proc %d: word %d went backwards: %d after %d (stale read)",
							i, a, v, prev)
						return
					}
					last[a] = v
				}
				if rng.Intn(8) == 0 {
					pr.Compute(int64(rng.Intn(20)))
				}
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	close(errCh)
	for err := range errCh {
		t.Errorf("%s: %v", p.Name(), err)
	}
	return s
}

// RunRMWCounters hammers a few shared counters with atomic RMW
// increments mixed with plain reads and unrelated writes; the totals
// must be exact.
func RunRMWCounters(t *testing.T, p protocol.Protocol, o Options) *sim.System {
	t.Helper()
	s := NewSystem(p, o)
	g := s.Geometry()
	const counters = 3
	incs := make([][]int, o.Procs)
	ws := make([]func(*sim.Proc), o.Procs)
	for i := range ws {
		i := i
		incs[i] = make([]int, counters)
		rng := rand.New(rand.NewSource(o.Seed ^ int64(i*7919)))
		ws[i] = func(pr *sim.Proc) {
			for k := 0; k < o.OpsPerProc/3; k++ {
				c := rng.Intn(counters)
				a := g.Base(addr.Block(c))
				switch rng.Intn(4) {
				case 0, 1:
					pr.RMW(a, func(v uint64) uint64 { return v + 1 })
					incs[i][c]++
				case 2:
					pr.Read(a)
				case 3:
					// Unrelated traffic to cause evictions and sharing.
					blk := addr.Block(counters + rng.Intn(o.Blocks))
					pr.Write(g.Base(blk), uint64(k))
				}
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	for c := 0; c < counters; c++ {
		want := uint64(0)
		for i := range incs {
			want += uint64(incs[i][c])
		}
		if got := latestWord(s, g.Base(addr.Block(c))); got != want {
			t.Errorf("%s: counter %d = %d, want %d (lost or duplicated RMW)", p.Name(), c, got, want)
		}
	}
	return s
}

// latestWord returns the globally latest value of a word: a dirty
// cached copy if one exists, else memory.
func latestWord(s *sim.System, a addr.Addr) uint64 {
	b := s.Geometry().BlockOf(a)
	for _, c := range s.Caches {
		if c.Protocol().IsDirty(c.State(b)) {
			if v, ok := c.ReadWord(a); ok {
				return v
			}
		}
	}
	return s.Mem.ReadWord(a)
}

// RunMigration moves a single logical process across processors: each
// "hop" writes state on one processor and validates it on the next —
// the second occasion for providing the latest version in Section C.3.
func RunMigration(t *testing.T, p protocol.Protocol, o Options) *sim.System {
	t.Helper()
	s := NewSystem(p, o)
	g := s.Geometry()
	hops := o.OpsPerProc / 10
	if hops < 4 {
		hops = 4
	}
	token := g.Base(0) // handoff word
	state := g.Base(1) // "process state" word
	ws := make([]func(*sim.Proc), o.Procs)
	for i := range ws {
		i := i
		ws[i] = func(pr *sim.Proc) {
			for h := 0; h < hops; h++ {
				if h%o.Procs != i {
					continue
				}
				// Wait for my turn (spin on the token in cache).
				for pr.Read(token) != uint64(h) {
					pr.Compute(3)
				}
				if h > 0 {
					if got := pr.Read(state); got != uint64(h-1) {
						t.Errorf("%s: hop %d on proc %d: state = %d, want %d",
							p.Name(), h, i, got, h-1)
					}
				}
				pr.Write(state, uint64(h))
				pr.Write(token, uint64(h+1))
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return s
}
