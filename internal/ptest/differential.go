package ptest

// The differential sim↔mcheck harness: generate a seeded random
// action trace, replay it through the model checker's atomic-step
// executor (mcheck.Replayer, invariants asserted after every action)
// AND through the real discrete-event engine (internal/sim, online
// coherence checker attached), then cross-check what the two
// implementations of the paper's bus semantics observed — per-step
// read values, final cache-line states and data, and final memory
// contents. Any divergence means one of the two engines executes a
// protocol transition differently.

import (
	"math/rand"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
)

// DiffOptions sizes a differential run.
type DiffOptions struct {
	Procs  int
	Blocks int
	Words  int // forced to 1 for one-word-block protocols
	Steps  int
	Seed   int64
}

// DefaultDiffOptions returns a small, contentious configuration.
func DefaultDiffOptions(seed int64) DiffOptions {
	return DiffOptions{Procs: 3, Blocks: 2, Words: 2, Steps: 40, Seed: seed}
}

// GenTrace generates a seeded random action trace that both engines
// can replay: no evictions (caches are sized Ways == Blocks, and the
// sim engine picks its own victims anyway), and no denied operations
// — the generator tracks lock ownership, so non-holders never touch
// a locked block and unlocks only come from the holder. Lock/unlock
// actions appear only under hardware-lock protocols, whole-block
// writes only under write-no-fetch protocols.
func GenTrace(p protocol.Protocol, o DiffOptions) []mcheck.Action {
	feats := p.Features()
	words := o.Words
	if feats.OneWordBlocks {
		words = 1
	}
	rng := rand.New(rand.NewSource(o.Seed))
	lockedBy := make([]int, o.Blocks)
	for i := range lockedBy {
		lockedBy[i] = -1
	}
	var trace []mcheck.Action
	for len(trace) < o.Steps {
		proc := rng.Intn(o.Procs)
		var avail []int
		for b, owner := range lockedBy {
			if owner == -1 || owner == proc {
				avail = append(avail, b)
			}
		}
		if len(avail) == 0 {
			continue // every block locked by others; let another proc act
		}
		b := avail[rng.Intn(len(avail))]
		w := rng.Intn(words)
		val := uint64(rng.Intn(64) + 1)
		roll := rng.Float64()
		switch {
		case feats.HardwareLock && lockedBy[b] == proc && roll < 0.35:
			trace = append(trace, mcheck.Action{Proc: proc, Op: protocol.OpUnlock, Block: uint64(b), Value: val})
			lockedBy[b] = -1
		case feats.HardwareLock && lockedBy[b] == -1 && roll < 0.15:
			trace = append(trace, mcheck.Action{Proc: proc, Op: protocol.OpLock, Block: uint64(b)})
			lockedBy[b] = proc
		case feats.WriteNoFetch && roll < 0.25:
			trace = append(trace, mcheck.Action{Proc: proc, Op: protocol.OpWriteBlock, Block: uint64(b), Value: val})
		case roll < 0.6:
			trace = append(trace, mcheck.Action{Proc: proc, Op: protocol.OpWrite, Block: uint64(b), Word: w, Value: val})
		default:
			trace = append(trace, mcheck.Action{Proc: proc, Op: protocol.OpRead, Block: uint64(b), Word: w})
		}
	}
	// Release any lock still held so the trace quiesces unlocked.
	for b, owner := range lockedBy {
		if owner != -1 {
			trace = append(trace, mcheck.Action{Proc: owner, Op: protocol.OpUnlock, Block: uint64(b), Value: uint64(rng.Intn(64) + 1)})
		}
	}
	return trace
}

// diffStepGap spaces trace steps in simulated time so the sim
// reproduces the exact global interleaving (same constant the
// counterexample replay uses).
const diffStepGap = 20000

// RunDifferential executes one generated trace through both engines
// and cross-checks them. Failures are reported on t with the step,
// action, and both sides' views.
func RunDifferential(t *testing.T, p protocol.Protocol, o DiffOptions) {
	t.Helper()
	trace := GenTrace(p, o)

	// Model-checker side: apply each action, asserting the invariant
	// suite after every step.
	rep := mcheck.NewReplayer(mcheck.Options{
		Protocol: p, Procs: o.Procs, Blocks: o.Blocks, Words: o.Words,
	})
	outcomes := make([]mcheck.Outcome, len(trace))
	for i, a := range trace {
		out, viols, err := rep.Apply(a)
		if err != nil {
			t.Fatalf("%s: step %d (%s): %v", p.Name(), i+1, a, err)
		}
		for _, v := range viols {
			t.Errorf("%s: step %d (%s): machine invariant violated: %s", p.Name(), i+1, a, v)
		}
		if out.Denied {
			t.Fatalf("%s: step %d (%s): generator produced a denied action", p.Name(), i+1, a)
		}
		outcomes[i] = out
	}

	// Engine side: the same trace through the real discrete-event
	// simulator, each step paced to its global slot, with the online
	// coherence checker running after every bus transaction.
	words := rep.Options().Words
	g := addr.MustGeometry(words, words)
	s := sim.New(sim.Config{
		Procs:     o.Procs,
		Protocol:  p,
		Geometry:  g,
		Cache:     cache.Config{Sets: 1, Ways: o.Blocks},
		Timing:    sim.DefaultTiming(),
		MaxCycles: int64(len(trace)+2) * diffStepGap * 10,
	})
	AttachOnlineChecker(t, s)

	perProc := make([][]int, o.Procs)
	for k, a := range trace {
		perProc[a.Proc] = append(perProc[a.Proc], k)
	}
	simVals := make([]uint64, len(trace))
	simRead := make([]bool, len(trace))
	ws := make([]func(*sim.Proc), o.Procs)
	for pid := 0; pid < o.Procs; pid++ {
		steps := perProc[pid]
		ws[pid] = func(pr *sim.Proc) {
			for _, k := range steps {
				a := trace[k]
				if wait := int64(k)*diffStepGap - pr.Now(); wait > 0 {
					pr.Compute(wait)
				}
				at := g.Base(addr.Block(a.Block)) + addr.Addr(a.Word)
				switch a.Op {
				case protocol.OpRead:
					simVals[k] = pr.Read(at)
					simRead[k] = true
				case protocol.OpWrite:
					pr.Write(at, a.Value)
				case protocol.OpLock:
					simVals[k] = pr.LockRead(at)
					simRead[k] = true
				case protocol.OpUnlock:
					pr.UnlockWrite(at, a.Value)
				case protocol.OpWriteBlock:
					vals := make([]uint64, g.BlockWords)
					for i := range vals {
						vals[i] = a.Value
					}
					pr.WriteBlock(g.Base(addr.Block(a.Block)), vals)
				}
			}
		}
	}
	if err := s.Run(ws); err != nil {
		t.Fatalf("%s: sim replay: %v", p.Name(), err)
	}

	// Cross-check 1: every read-class operation observed the same value
	// in both engines.
	for k, a := range trace {
		if outcomes[k].DidRead != simRead[k] {
			t.Errorf("%s: step %d (%s): machine didRead=%v, sim didRead=%v",
				p.Name(), k+1, a, outcomes[k].DidRead, simRead[k])
			continue
		}
		if outcomes[k].DidRead && outcomes[k].Value != simVals[k] {
			t.Errorf("%s: step %d (%s): machine read %d, sim read %d",
				p.Name(), k+1, a, outcomes[k].Value, simVals[k])
		}
	}

	// Cross-check 2: both engines reached the same cache-line states
	// and data.
	for c := 0; c < o.Procs; c++ {
		for b := 0; b < o.Blocks; b++ {
			mName, mData, mPresent := rep.CacheState(c, b)
			simState := s.Caches[c].State(addr.Block(b))
			sName := p.StateName(simState)
			sPresent := simState != protocol.Invalid
			if mName != sName || mPresent != sPresent {
				t.Errorf("%s: cache %d block %d: machine state %s (present=%v), sim state %s (present=%v)",
					p.Name(), c, b, mName, mPresent, sName, sPresent)
				continue
			}
			if mPresent && !wordsEqual(mData, s.Caches[c].Data(addr.Block(b))) {
				t.Errorf("%s: cache %d block %d: machine data %v, sim data %v",
					p.Name(), c, b, mData, s.Caches[c].Data(addr.Block(b)))
			}
		}
	}

	// Cross-check 3: identical final memory contents.
	for b := 0; b < o.Blocks; b++ {
		if got := s.Mem.ReadBlock(addr.Block(b)); !wordsEqual(rep.MemBlock(b), got) {
			t.Errorf("%s: memory block %d: machine %v, sim %v", p.Name(), b, rep.MemBlock(b), got)
		}
	}

	// And the engine's quiesced final state passes the full invariant
	// suite (the machine side asserted its own after every step).
	CheckInvariants(t, s)
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
