// Package trace defines a plain-text reference-trace format so
// workloads can be captured, stored, and replayed against any
// protocol — the moral equivalent of the address traces the
// contemporaneous evaluations (Archibald-Baer, Smith) were driven by.
//
// Format: one event per line,
//
//	<proc> R <addr>          read
//	<proc> E <addr>          read with the read-for-write instruction
//	<proc> W <addr> <val>    write
//	<proc> L <addr>          lock-read
//	<proc> U <addr> <val>    unlock-write
//	<proc> A <addr>          atomic increment (RMW)
//	<proc> C <cycles>        compute
//
// Any event may carry an optional trailing routing-class token —
// "sync", "instr", or "data" — for replay on tiered machines; events
// without one are unclassified, and classic traces parse unchanged.
//
// '#' starts a comment; blank lines are ignored.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
)

// Kind is a trace event type.
type Kind byte

// Event kinds.
const (
	Read    Kind = 'R'
	ReadEx  Kind = 'E'
	Write   Kind = 'W'
	Lock    Kind = 'L'
	Unlock  Kind = 'U'
	Atomic  Kind = 'A'
	Compute Kind = 'C'
)

// Event is one trace record.
type Event struct {
	Proc   int
	Kind   Kind
	Addr   addr.Addr
	Value  uint64
	Cycles int64
	Class  interconnect.Class // routing class; zero = unclassified
}

// String renders the event in trace format.
func (e Event) String() string {
	var s string
	switch e.Kind {
	case Write, Unlock:
		s = fmt.Sprintf("%d %c %d %d", e.Proc, e.Kind, e.Addr, e.Value)
	case Compute:
		s = fmt.Sprintf("%d C %d", e.Proc, e.Cycles)
	default:
		s = fmt.Sprintf("%d %c %d", e.Proc, e.Kind, e.Addr)
	}
	if e.Class != interconnect.Unclassified {
		s += " " + e.Class.String()
	}
	return s
}

// Trace is an ordered sequence of per-processor events. Events of
// different processors are independent streams; ordering between
// processors is decided by the simulator.
type Trace struct {
	Events []Event
}

// Procs returns the number of processors the trace references.
func (t *Trace) Procs() int {
	n := 0
	for _, e := range t.Events {
		if e.Proc+1 > n {
			n = e.Proc + 1
		}
	}
	return n
}

// Encode writes the trace in text form.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(bw, e.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a text trace.
func Decode(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var e Event
		var kind string
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: too few fields: %q", lineNo, line)
		}
		if _, err := fmt.Sscanf(fields[0], "%d", &e.Proc); err != nil || e.Proc < 0 {
			return nil, fmt.Errorf("trace: line %d: bad processor: %q", lineNo, line)
		}
		kind = fields[1]
		if len(kind) != 1 {
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, kind)
		}
		e.Kind = Kind(kind[0])
		used := 3
		switch e.Kind {
		case Read, ReadEx, Lock, Atomic:
			if _, err := fmt.Sscanf(fields[2], "%d", &e.Addr); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad address: %q", lineNo, line)
			}
		case Write, Unlock:
			if len(fields) < 4 {
				return nil, fmt.Errorf("trace: line %d: write needs a value: %q", lineNo, line)
			}
			if _, err := fmt.Sscanf(fields[2], "%d", &e.Addr); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad address: %q", lineNo, line)
			}
			if _, err := fmt.Sscanf(fields[3], "%d", &e.Value); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad value: %q", lineNo, line)
			}
			used = 4
		case Compute:
			if _, err := fmt.Sscanf(fields[2], "%d", &e.Cycles); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad cycle count: %q", lineNo, line)
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown kind %q", lineNo, kind)
		}
		if len(fields) > used {
			if len(fields) > used+1 {
				return nil, fmt.Errorf("trace: line %d: too many fields: %q", lineNo, line)
			}
			c, err := interconnect.ParseClass(fields[used])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
			}
			e.Class = c
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Workloads converts the trace into one workload function per
// processor, replayable on any simulated machine. Lock events on
// protocols without the hardware lock are replayed as atomic
// test-and-set/clear pairs.
func (t *Trace) Workloads(procs int) []func(*sim.Proc) {
	streams := make([][]Event, procs)
	for _, e := range t.Events {
		if e.Proc < procs {
			streams[e.Proc] = append(streams[e.Proc], e)
		}
	}
	ws := make([]func(*sim.Proc), procs)
	for i := range ws {
		evs := streams[i]
		ws[i] = func(p *sim.Proc) {
			for _, e := range evs {
				switch e.Kind {
				case Read:
					if e.Class != interconnect.Unclassified {
						p.ReadClass(e.Addr, e.Class)
					} else {
						p.Read(e.Addr)
					}
				case ReadEx:
					if e.Class != interconnect.Unclassified {
						p.ReadExClass(e.Addr, e.Class)
					} else {
						p.ReadEx(e.Addr)
					}
				case Write:
					if e.Class != interconnect.Unclassified {
						p.WriteClass(e.Addr, e.Value, e.Class)
					} else {
						p.Write(e.Addr, e.Value)
					}
				case Lock:
					p.LockRead(e.Addr)
				case Unlock:
					p.UnlockWrite(e.Addr, e.Value)
				case Atomic:
					p.RMW(e.Addr, func(v uint64) uint64 { return v + 1 })
				case Compute:
					p.Compute(e.Cycles)
				}
			}
		}
	}
	return ws
}
