package trace

import (
	"bytes"
	"testing"

	"cachesync/internal/interconnect"
)

// FuzzTraceBinaryRoundTrip drives DecodeBinary with arbitrary bytes:
// decoding must never panic, and for every stream that decodes, the
// decode∘encode∘decode composition must be the identity on events.
// (Byte-level identity is deliberately NOT required: uvarints are
// non-canonical, so a valid stream can carry over-long varints that
// re-encode shorter.)
func FuzzTraceBinaryRoundTrip(f *testing.F) {
	// A representative valid trace as the primary seed.
	seedTrace := &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 5},
		{Proc: 1, Kind: Write, Addr: 5, Value: 42},
		{Proc: 2, Kind: Lock, Addr: 8},
		{Proc: 2, Kind: Unlock, Addr: 8, Value: 7},
		{Proc: 3, Kind: ReadEx, Addr: 12},
		{Proc: 0, Kind: Atomic, Addr: 16},
		{Proc: 1, Kind: Compute, Cycles: 100},
	}}
	var buf bytes.Buffer
	if err := seedTrace.EncodeBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})                                                                                      // empty
	f.Add([]byte("CSTR"))                                                                                // magic, no version
	f.Add([]byte("CSTR\x01"))                                                                            // valid empty trace
	f.Add([]byte("CSTR\x02R\x00\x05"))                                                                   // wrong version
	f.Add([]byte("XXXX\x01"))                                                                            // bad magic
	f.Add([]byte("CSTR\x01R\x00"))                                                                       // truncated event
	f.Add([]byte("CSTR\x01Z\x00\x05"))                                                                   // unknown kind
	f.Add([]byte("CSTR\x01W\x01\x05\x2a"))                                                               // single write
	f.Add(append([]byte("CSTR\x01R"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x05)) // huge proc uvarint

	// Version 2: per-event routing-class byte.
	classTrace := &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 5, Class: interconnect.Instr},
		{Proc: 1, Kind: Write, Addr: 9, Value: 3, Class: interconnect.Data},
		{Proc: 2, Kind: Lock, Addr: 8, Class: interconnect.Sync},
		{Proc: 3, Kind: Compute, Cycles: 40},
	}}
	var cbuf bytes.Buffer
	if err := classTrace.EncodeBinary(&cbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(cbuf.Bytes())
	f.Add([]byte("CSTR\x02"))                                  // valid empty v2 trace
	f.Add([]byte("CSTR\x02R\x00\x05"))                         // v2 event missing its class byte
	f.Add([]byte("CSTR\x02R\x00\x05\x07"))                     // class byte out of range
	f.Add([]byte("CSTR\x02R\x00\x05\x02\x57\x01\x09\x03\x03")) // instr read + data write

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		for _, e := range tr.Events {
			if e.Proc < 0 || e.Cycles < 0 {
				t.Fatalf("decode accepted out-of-range event %+v", e)
			}
		}
		var enc bytes.Buffer
		if err := tr.EncodeBinary(&enc); err != nil {
			t.Fatalf("re-encoding a decoded trace failed: %v", err)
		}
		tr2, err := DecodeBinary(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("decoding a re-encoded trace failed: %v", err)
		}
		if len(tr.Events) != len(tr2.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(tr2.Events))
		}
		for i := range tr.Events {
			if tr.Events[i] != tr2.Events[i] {
				t.Fatalf("round trip changed event %d: %+v -> %+v", i, tr.Events[i], tr2.Events[i])
			}
		}
	})
}

// FuzzTraceTextDecode drives the text parser: arbitrary text must
// either decode or error, never panic, and whatever decodes must
// survive the text round trip.
func FuzzTraceTextDecode(f *testing.F) {
	f.Add("0 R 5\n1 W 5 42\n2 L 8\n2 U 8 7\n0 A 16\n1 C 100\n")
	f.Add("# comment\n\n0 E 3\n")
	f.Add("not a trace")
	f.Add("0 W 5")    // write without value
	f.Add("-1 R 5\n") // negative proc
	f.Add("0 R 5 instr\n1 W 5 42 data\n2 L 8 sync\n")
	f.Add("0 R 5 bogus\n")        // unknown class token
	f.Add("0 W 5 42 data junk\n") // trailing junk after the class
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := Decode(bytes.NewReader([]byte(text)))
		if err != nil {
			return
		}
		var enc bytes.Buffer
		if err := tr.Encode(&enc); err != nil {
			t.Fatalf("re-encoding a decoded trace failed: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("decoding a re-encoded trace failed: %v", err)
		}
		if len(tr.Events) != len(tr2.Events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(tr.Events), len(tr2.Events))
		}
	})
}
