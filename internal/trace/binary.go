package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"cachesync/internal/addr"
	"cachesync/internal/interconnect"
)

// Binary trace format: a compact varint encoding for large traces.
//
//	magic "CSTR" | version byte | events...
//
// Each event is: kind byte, uvarint proc, then per kind:
//
//	R/E/L/A: uvarint addr
//	W/U:     uvarint addr, uvarint value
//	C:       uvarint cycles
//
// Version 2 appends one routing-class byte to every event
// (interconnect.Class). The encoder emits version 1 whenever no event
// is classified, so classic traces stay byte-identical.
const (
	binaryMagic    = "CSTR"
	binaryVersion  = 1
	binaryVersion2 = 2

	// Decode-side sanity bounds (corrupt streams must produce errors,
	// never out-of-range Event fields).
	maxTraceProcs  = 1 << 20
	maxTraceCycles = 1 << 40
)

// EncodeBinary writes the trace in the compact binary format.
func (t *Trace) EncodeBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	ver := byte(binaryVersion)
	for _, e := range t.Events {
		if e.Class != interconnect.Unclassified {
			ver = binaryVersion2
			break
		}
	}
	if err := bw.WriteByte(ver); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, e := range t.Events {
		if err := bw.WriteByte(byte(e.Kind)); err != nil {
			return err
		}
		if err := put(uint64(e.Proc)); err != nil {
			return err
		}
		switch e.Kind {
		case Read, ReadEx, Lock, Atomic:
			if err := put(uint64(e.Addr)); err != nil {
				return err
			}
		case Write, Unlock:
			if err := put(uint64(e.Addr)); err != nil {
				return err
			}
			if err := put(e.Value); err != nil {
				return err
			}
		case Compute:
			if err := put(uint64(e.Cycles)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("trace: cannot encode kind %q", e.Kind)
		}
		if ver == binaryVersion2 {
			if e.Class > interconnect.Data {
				return fmt.Errorf("trace: cannot encode class %d", e.Class)
			}
			if err := bw.WriteByte(byte(e.Class)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// DecodeBinary parses the compact binary format.
func DecodeBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: short magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != binaryVersion && ver != binaryVersion2 {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	t := &Trace{}
	for {
		kb, err := br.ReadByte()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		e := Event{Kind: Kind(kb)}
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: truncated event: %w", err)
		}
		// Bound the decoded fields: an adversarial or corrupt stream can
		// carry uvarints that overflow int (a negative Proc would index
		// out of bounds in Workloads) or int64 cycle counts.
		if proc > maxTraceProcs {
			return nil, fmt.Errorf("trace: implausible processor id %d", proc)
		}
		e.Proc = int(proc)
		switch e.Kind {
		case Read, ReadEx, Lock, Atomic:
			a, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			e.Addr = addr.Addr(a)
		case Write, Unlock:
			a, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			e.Addr, e.Value = addr.Addr(a), v
		case Compute:
			c, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if c > maxTraceCycles {
				return nil, fmt.Errorf("trace: implausible compute span %d", c)
			}
			e.Cycles = int64(c)
		default:
			return nil, fmt.Errorf("trace: unknown kind byte %#x", kb)
		}
		if ver == binaryVersion2 {
			cb, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: truncated class byte: %w", err)
			}
			if cb > byte(interconnect.Data) {
				return nil, fmt.Errorf("trace: unknown class byte %#x", cb)
			}
			e.Class = interconnect.Class(cb)
		}
		t.Events = append(t.Events, e)
	}
}
