package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cachesync/internal/addr"
	"cachesync/internal/core"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 5},
		{Proc: 1, Kind: Write, Addr: 9, Value: 42},
		{Proc: 0, Kind: Lock, Addr: 0},
		{Proc: 0, Kind: Unlock, Addr: 0, Value: 7},
		{Proc: 2, Kind: Compute, Cycles: 100},
		{Proc: 1, Kind: Atomic, Addr: 16},
		{Proc: 1, Kind: ReadEx, Addr: 20},
	}}
	var buf bytes.Buffer
	if err := in.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != len(in.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(out.Events), len(in.Events))
	}
	for i := range in.Events {
		if in.Events[i] != out.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, in.Events[i], out.Events[i])
		}
	}
	if out.Procs() != 3 {
		t.Errorf("Procs() = %d, want 3", out.Procs())
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	src := "# a trace\n\n0 R 4\n   \n# done\n1 W 8 3\n"
	tr, err := Decode(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("got %d events", len(tr.Events))
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"0 R",     // too few fields
		"x R 4",   // bad proc
		"-1 R 4",  // negative proc
		"0 Z 4",   // unknown kind
		"0 W 4",   // write missing value
		"0 W x 1", // bad address
		"0 W 4 x", // bad value
		"0 C x",   // bad cycles
		"0 RW 4",  // kind too long
	}
	for _, src := range bad {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q): want error", src)
		}
	}
}

// Property: any generated trace round-trips through text exactly.
func TestRoundTripProperty(t *testing.T) {
	kinds := []Kind{Read, ReadEx, Write, Lock, Unlock, Atomic, Compute}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &Trace{}
		for i := 0; i < int(n%50); i++ {
			e := Event{
				Proc: rng.Intn(8),
				Kind: kinds[rng.Intn(len(kinds))],
			}
			switch e.Kind {
			case Compute:
				e.Cycles = int64(rng.Intn(1000))
			case Write, Unlock:
				e.Addr = addr.Addr(rng.Intn(4096))
				e.Value = rng.Uint64()
			default:
				e.Addr = addr.Addr(rng.Intn(4096))
			}
			e.Class = interconnect.Class(rng.Intn(4))
			in.Events = append(in.Events, e)
		}
		var buf bytes.Buffer
		if in.Encode(&buf) != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil {
			return false
		}
		if len(out.Events) != len(in.Events) {
			return false
		}
		for i := range in.Events {
			if in.Events[i] != out.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWorkloadsReplay(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Proc: 0, Kind: Write, Addr: 4, Value: 11},
		{Proc: 0, Kind: Lock, Addr: 0},
		{Proc: 0, Kind: Unlock, Addr: 0, Value: 1},
		{Proc: 1, Kind: Compute, Cycles: 200},
		{Proc: 1, Kind: Read, Addr: 4},
		{Proc: 1, Kind: Atomic, Addr: 8},
	}}
	s := sim.New(sim.DefaultConfig(core.Protocol{}))
	if err := s.Run(tr.Workloads(4)); err != nil {
		t.Fatal(err)
	}
	// The write must have landed and the RMW incremented word 8.
	if v := s.Caches[0].Data(1); v == nil || v[0] != 11 {
		t.Errorf("replayed write missing: %v", v)
	}
	found := false
	for _, c := range s.Caches {
		if v, ok := c.ReadWord(8); ok && v == 1 {
			found = true
		}
	}
	if !found && s.Mem.ReadWord(8) != 1 {
		t.Error("replayed atomic increment missing")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 5},
		{Proc: 3, Kind: Write, Addr: 1 << 40, Value: 1<<63 + 7},
		{Proc: 1, Kind: Lock, Addr: 0},
		{Proc: 1, Kind: Unlock, Addr: 0, Value: 2},
		{Proc: 2, Kind: Compute, Cycles: 123456},
		{Proc: 0, Kind: Atomic, Addr: 99},
		{Proc: 0, Kind: ReadEx, Addr: 12},
	}}
	var buf bytes.Buffer
	if err := in.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != len(in.Events) {
		t.Fatalf("lost events: %d vs %d", len(out.Events), len(in.Events))
	}
	for i := range in.Events {
		if in.Events[i] != out.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, in.Events[i], out.Events[i])
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := DecodeBinary(strings.NewReader("XXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeBinary(strings.NewReader("CS")); err == nil {
		t.Error("short magic accepted")
	}
	if _, err := DecodeBinary(strings.NewReader("CSTR\x09")); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated event.
	var buf bytes.Buffer
	tr := &Trace{Events: []Event{{Proc: 0, Kind: Write, Addr: 4, Value: 1}}}
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := DecodeBinary(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("truncated event accepted")
	}
	// Unknown kind.
	bad := &Trace{Events: []Event{{Proc: 0, Kind: Kind('Z'), Addr: 1}}}
	if err := bad.EncodeBinary(&buf); err == nil {
		t.Error("unknown kind encoded")
	}
}

// Property: the binary codec round-trips arbitrary generated traces
// and is never larger than ~2x the event count in words.
func TestBinaryRoundTripProperty(t *testing.T) {
	kinds := []Kind{Read, ReadEx, Write, Lock, Unlock, Atomic, Compute}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &Trace{}
		for i := 0; i < int(n%60); i++ {
			e := Event{Proc: rng.Intn(16), Kind: kinds[rng.Intn(len(kinds))]}
			switch e.Kind {
			case Compute:
				e.Cycles = int64(rng.Intn(1 << 20))
			case Write, Unlock:
				e.Addr = addr.Addr(rng.Uint64() >> 16)
				e.Value = rng.Uint64()
			default:
				e.Addr = addr.Addr(rng.Uint64() >> 16)
			}
			e.Class = interconnect.Class(rng.Intn(4))
			in.Events = append(in.Events, e)
		}
		var buf bytes.Buffer
		if in.EncodeBinary(&buf) != nil {
			return false
		}
		out, err := DecodeBinary(&buf)
		if err != nil || len(out.Events) != len(in.Events) {
			return false
		}
		for i := range in.Events {
			if in.Events[i] != out.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
