package trace

import (
	"bytes"
	"strings"
	"testing"

	"cachesync/internal/aquarius"
	"cachesync/internal/interconnect"
	"cachesync/internal/sim"
)

// classTrace mixes classified and unclassified events of every kind
// that can carry a class.
func classedTrace() *Trace {
	return &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 5, Class: interconnect.Instr},
		{Proc: 0, Kind: Write, Addr: 9, Value: 42, Class: interconnect.Data},
		{Proc: 1, Kind: ReadEx, Addr: 12, Class: interconnect.Data},
		{Proc: 1, Kind: Read, Addr: 64, Class: interconnect.Sync},
		{Proc: 2, Kind: Lock, Addr: 0},
		{Proc: 2, Kind: Unlock, Addr: 0, Value: 1},
		{Proc: 3, Kind: Compute, Cycles: 50},
		{Proc: 3, Kind: Read, Addr: 7}, // unclassified stays unclassified
	}}
}

// TestClassTextRoundTrip: the optional trailing class token survives
// the text codec, and its absence decodes to Unclassified.
func TestClassTextRoundTrip(t *testing.T) {
	in := classedTrace()
	var buf bytes.Buffer
	if err := in.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "0 R 5 instr") || !strings.Contains(text, "0 W 9 42 data") {
		t.Fatalf("encoded text missing class tokens:\n%s", text)
	}
	out, err := Decode(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Events {
		if in.Events[i] != out.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, in.Events[i], out.Events[i])
		}
	}
}

// TestClassBinaryRoundTrip: classes survive the binary codec, which
// upgrades to version 2 only when an event is classified.
func TestClassBinaryRoundTrip(t *testing.T) {
	in := classedTrace()
	var buf bytes.Buffer
	if err := in.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != binaryVersion2 {
		t.Fatalf("classified trace encoded as version %d, want %d", v, binaryVersion2)
	}
	out, err := DecodeBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Events {
		if in.Events[i] != out.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, in.Events[i], out.Events[i])
		}
	}
}

// TestUnclassifiedTraceStaysVersion1: a trace with no classes encodes
// byte-identically to the classic version-1 stream.
func TestUnclassifiedTraceStaysVersion1(t *testing.T) {
	in := &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 5},
		{Proc: 1, Kind: Write, Addr: 9, Value: 3},
	}}
	var buf bytes.Buffer
	if err := in.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if v := buf.Bytes()[4]; v != binaryVersion {
		t.Errorf("unclassified trace encoded as version %d, want %d", v, binaryVersion)
	}
	var txt bytes.Buffer
	if err := in.Encode(&txt); err != nil {
		t.Fatal(err)
	}
	if got, want := txt.String(), "0 R 5\n1 W 9 3\n"; got != want {
		t.Errorf("text form %q, want %q", got, want)
	}
}

// TestClassDecodeErrors: malformed class annotations are rejected in
// both codecs rather than silently dropped.
func TestClassDecodeErrors(t *testing.T) {
	for _, src := range []string{
		"0 R 5 bogus",
		"0 R 5 data extra",
		"0 W 5 1 data extra",
	} {
		if _, err := Decode(strings.NewReader(src)); err == nil {
			t.Errorf("Decode(%q): want error", src)
		}
	}
	if _, err := DecodeBinary(strings.NewReader("CSTR\x02R\x00\x05\x09")); err == nil {
		t.Error("out-of-range class byte accepted")
	}
	if _, err := DecodeBinary(strings.NewReader("CSTR\x02R\x00\x05")); err == nil {
		t.Error("missing class byte accepted")
	}
}

// TestClassifiedReplayOnTwoTier: a fully classified trace replays on a
// Routed two-tier machine, with each class routed to its interconnect;
// the same trace replays unchanged on a classic one-tier machine.
func TestClassifiedReplayOnTwoTier(t *testing.T) {
	tr := &Trace{Events: []Event{
		{Proc: 0, Kind: Read, Addr: 4096, Class: interconnect.Instr},
		{Proc: 0, Kind: Lock, Addr: 0},
		{Proc: 0, Kind: Write, Addr: 900, Value: 7, Class: interconnect.Data},
		{Proc: 0, Kind: Unlock, Addr: 0, Value: 1},
		{Proc: 1, Kind: Compute, Cycles: 40},
		{Proc: 1, Kind: Read, Addr: 64, Class: interconnect.Sync},
	}}
	cfg := aquarius.DefaultConfig(2)
	cfg.Routed = true
	a := aquarius.New(cfg)
	if err := a.Run(tr.Workloads(2)); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if got := st.Get("route.instr"); got != 1 {
		t.Errorf("route.instr = %d, want 1", got)
	}
	if got := st.Get("route.data"); got != 1 {
		t.Errorf("route.data = %d, want 1", got)
	}
	if st.Get("route.sync") == 0 {
		t.Error("route.sync = 0, want > 0 (lock traffic)")
	}

	// One-tier replay of the same classified trace still works: classes
	// are inert without a lower tier.
	s := sim.New(cfg.Sync)
	if err := s.Run(tr.Workloads(2)); err != nil {
		t.Fatal(err)
	}
}
