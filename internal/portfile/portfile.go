// Package portfile is the daemon-address handshake shared by
// cachesyncd (which writes the file once its listener is bound),
// cmd/loadgen, and the cluster coordinator (which wait for it): a tiny
// file holding one "host:port" line. The write is atomic
// (unique temp file + rename), and readers treat a file without a
// terminating newline as still being written — so a reader polling the
// path can never act on a truncated address, even against a writer
// that skips the rename discipline.
package portfile

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// pollInterval is how often Wait re-reads the path.
const pollInterval = 20 * time.Millisecond

// Write lands addr at path atomically: a unique temp file in the same
// directory, newline-terminated, renamed into place. A concurrent
// Read/Wait observes either the old content or the complete new
// content, never a prefix.
func Write(path, addr string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".portfile-*")
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(tmp, addr); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Read returns the address in path, reporting ok only for a complete
// file: non-empty and newline-terminated. A missing file, an empty
// file, or a partial write (no trailing newline yet) all read as "not
// there yet" — Wait keeps polling through them.
func Read(path string) (addr string, ok bool) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	s := string(raw)
	if !strings.HasSuffix(s, "\n") {
		return "", false
	}
	addr = strings.TrimSpace(s)
	if addr == "" {
		return "", false
	}
	return addr, true
}

// Wait polls path until a complete address appears or ctx ends. The
// address is returned as written; liveness of whatever it names is the
// caller's problem (the file may be stale — left over from a process
// that died without cleaning up — so callers that care must follow up
// with a health probe).
func Wait(ctx context.Context, path string) (string, error) {
	t := time.NewTicker(pollInterval)
	defer t.Stop()
	for {
		if addr, ok := Read(path); ok {
			return addr, nil
		}
		select {
		case <-ctx.Done():
			return "", fmt.Errorf("portfile %s: %w", path, ctx.Err())
		case <-t.C:
		}
	}
}
