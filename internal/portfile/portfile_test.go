package portfile

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWriteReadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "port")
	if err := Write(path, "127.0.0.1:4321"); err != nil {
		t.Fatal(err)
	}
	addr, ok := Read(path)
	if !ok || addr != "127.0.0.1:4321" {
		t.Fatalf("Read = %q, %v; want 127.0.0.1:4321, true", addr, ok)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries after Write, want 1 (no temp files)", len(ents))
	}
}

func TestReadMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, ok := Read(filepath.Join(dir, "absent")); ok {
		t.Fatal("Read reported ok for a missing file")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := Read(empty); ok {
		t.Fatal("Read reported ok for an empty file")
	}
	blank := filepath.Join(dir, "blank")
	if err := os.WriteFile(blank, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := Read(blank); ok {
		t.Fatal("Read reported ok for a whitespace-only file")
	}
}

// TestPartialWriteNotObserved: a file that exists but has no
// terminating newline is a write in progress, not an address. Wait
// must poll through it and return only the completed content.
func TestPartialWriteNotObserved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "port")
	if err := os.WriteFile(path, []byte("127.0.0.1:43"), 0o644); err != nil {
		t.Fatal(err)
	}
	if addr, ok := Read(path); ok {
		t.Fatalf("Read returned partial address %q", addr)
	}
	done := make(chan struct{})
	var got string
	var gotErr error
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		got, gotErr = Wait(ctx, path)
	}()
	// Give Wait a few polls over the partial file, then complete it.
	time.Sleep(60 * time.Millisecond)
	select {
	case <-done:
		t.Fatalf("Wait returned on a partial portfile: %q, %v", got, gotErr)
	default:
	}
	if err := Write(path, "127.0.0.1:4388"); err != nil {
		t.Fatal(err)
	}
	<-done
	if gotErr != nil || got != "127.0.0.1:4388" {
		t.Fatalf("Wait = %q, %v; want completed address", got, gotErr)
	}
}

func TestWaitAppears(t *testing.T) {
	path := filepath.Join(t.TempDir(), "port")
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = Write(path, "10.0.0.1:80")
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	addr, err := Wait(ctx, path)
	if err != nil || addr != "10.0.0.1:80" {
		t.Fatalf("Wait = %q, %v", addr, err)
	}
}

func TestWaitContextExpires(t *testing.T) {
	path := filepath.Join(t.TempDir(), "never")
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	if _, err := Wait(ctx, path); err == nil {
		t.Fatal("Wait returned nil error for a file that never appears")
	}
}

// TestStalePortfileReadsButAddressIsDead documents the stale-portfile
// contract: a file left behind by a dead process reads fine — Wait
// cannot tell — and the address refuses connections. Higher layers
// (the cluster's health probes) own that failure; this pins the
// division of responsibility.
func TestStalePortfileReadsButAddressIsDead(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the "process" dies, leaving its portfile behind

	path := filepath.Join(t.TempDir(), "port")
	if err := Write(path, addr); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	got, err := Wait(ctx, path)
	if err != nil || got != addr {
		t.Fatalf("Wait = %q, %v; want the stale address %q", got, err, addr)
	}
	if _, err := net.DialTimeout("tcp", got, 200*time.Millisecond); err == nil {
		t.Fatal("stale address unexpectedly accepts connections")
	}
}
