package bus

import (
	"testing"
	"testing/quick"
)

type recordingSnooper struct {
	id   int
	seen []*Transaction
}

func (r *recordingSnooper) ID() int              { return r.id }
func (r *recordingSnooper) Snoop(t *Transaction) { r.seen = append(r.seen, t) }

func TestCmdString(t *testing.T) {
	cases := map[Cmd]string{
		None: "none", Read: "read", ReadX: "readx", Upgrade: "upgrade",
		WriteWord: "writeword", UpdateWord: "updateword", Flush: "flush",
		Unlock: "unlock", WriteNoFetch: "writenofetch", IORead: "ioread",
		IOWrite: "iowrite", Cmd(200): "cmd(200)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("Cmd(%d).String() = %q, want %q", c, got, want)
		}
	}
}

func TestArbitrateEmpty(t *testing.T) {
	b := New()
	if _, ok := b.Arbitrate(); ok {
		t.Error("Arbitrate on empty bus returned ok")
	}
}

func TestArbitrateRoundRobin(t *testing.T) {
	b := New()
	b.Request(0, false)
	b.Request(1, false)
	b.Request(2, false)
	// lastWinner starts at -1, so 0 wins first.
	if id, _ := b.Arbitrate(); id != 0 {
		t.Fatalf("first winner = %d, want 0", id)
	}
	b.Request(0, false) // re-request; 1 and 2 should go first
	if id, _ := b.Arbitrate(); id != 1 {
		t.Fatalf("second winner = %d, want 1", id)
	}
	if id, _ := b.Arbitrate(); id != 2 {
		t.Fatalf("third winner = %d, want 2", id)
	}
	if id, _ := b.Arbitrate(); id != 0 {
		t.Fatalf("fourth winner = %d, want 0", id)
	}
}

func TestArbitrateHighPriorityWins(t *testing.T) {
	b := New()
	b.Request(0, false)
	b.Request(3, true)
	b.Request(1, false)
	if id, _ := b.Arbitrate(); id != 3 {
		t.Fatalf("winner = %d, want high-priority 3", id)
	}
	// With no waiters left the arbitration proceeds normally
	// ("with no wasted time", Section E.4).
	if id, _ := b.Arbitrate(); id != 0 {
		t.Fatalf("next winner = %d, want 0", id)
	}
}

func TestArbitrateHighPriorityRoundRobin(t *testing.T) {
	b := New()
	b.Request(2, true)
	b.Request(5, true)
	if id, _ := b.Arbitrate(); id != 2 {
		t.Fatalf("winner = %d, want 2", id)
	}
	b.Request(2, true)
	if id, _ := b.Arbitrate(); id != 5 {
		t.Fatalf("winner = %d, want 5 (round robin among highs)", id)
	}
}

func TestRequestCoalesce(t *testing.T) {
	b := New()
	b.Request(4, false)
	b.Request(4, true) // high bit is sticky
	b.Request(4, false)
	if got := len(b.Pending()); got != 1 {
		t.Fatalf("pending = %d entries, want 1", got)
	}
	b.Request(1, false)
	if id, _ := b.Arbitrate(); id != 4 {
		t.Fatalf("winner = %d, want 4 (kept high bit)", id)
	}
}

func TestWithdraw(t *testing.T) {
	b := New()
	b.Request(1, false)
	b.Request(2, false)
	b.Withdraw(1)
	b.Withdraw(99) // absent: no-op
	if id, _ := b.Arbitrate(); id != 2 {
		t.Fatalf("winner = %d, want 2 after withdrawing 1", id)
	}
	if b.HasPending() {
		t.Error("HasPending = true, want false")
	}
}

func TestBroadcastSkipsRequester(t *testing.T) {
	b := New()
	s0 := &recordingSnooper{id: 0}
	s1 := &recordingSnooper{id: 1}
	s2 := &recordingSnooper{id: 2}
	b.Attach(s0)
	b.Attach(s1)
	b.Attach(s2)
	txn := &Transaction{Cmd: Read, Block: 7, Requester: 1}
	b.Broadcast(txn)
	if len(s0.seen) != 1 || len(s2.seen) != 1 {
		t.Errorf("non-requesters saw %d/%d transactions, want 1/1", len(s0.seen), len(s2.seen))
	}
	if len(s1.seen) != 0 {
		t.Errorf("requester saw its own transaction")
	}
	if got := b.Counts.Get("bus.read"); got != 1 {
		t.Errorf("bus.read count = %d, want 1", got)
	}
}

func TestTransactionString(t *testing.T) {
	txn := &Transaction{Cmd: ReadX, Block: 3, Requester: 2, LockIntent: true, AfterWait: true}
	got := txn.String()
	want := "readx blk=3 req=2 lock afterwait"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: arbitration always drains every request exactly once, and
// all high-priority requests win before any low-priority request.
func TestArbitrateDrainProperty(t *testing.T) {
	f := func(ids []uint8, highMask []bool) bool {
		b := New()
		want := map[int]bool{}
		highs := map[int]bool{}
		for i, raw := range ids {
			id := int(raw % 32)
			high := i < len(highMask) && highMask[i]
			if _, dup := want[id]; dup {
				continue
			}
			want[id] = true
			if high {
				highs[id] = true
			}
			b.Request(id, high)
		}
		seenLow := false
		got := map[int]bool{}
		for {
			id, ok := b.Arbitrate()
			if !ok {
				break
			}
			if got[id] {
				return false // drained twice
			}
			got[id] = true
			if highs[id] && seenLow {
				return false // a high lost to a low
			}
			if !highs[id] {
				seenLow = true
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
