// Package bus models the single shared broadcast bus of a
// full-broadcast multiprocessor (Section A.2 of the paper): every
// transaction is visible to every cache, caches respond on wired-OR
// lines (hit, source/dirty status, locked), and a deterministic
// arbiter grants the bus with a reserved most-significant priority
// bit for busy-wait re-arbitration (Section E.4).
//
// The bus is not time-aware: the simulation engine owns the clock and
// asks the bus to arbitrate and to broadcast transactions; the engine
// prices each transaction from its Timing model.
package bus

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/stats"
)

// Cmd enumerates the bus transaction kinds used across all ten
// protocols. A given protocol issues only a subset.
type Cmd uint8

const (
	// None is the zero Cmd; it never appears on the bus.
	None Cmd = iota
	// Read fetches a block with read (shared-access) privilege.
	Read
	// ReadX fetches a block with write (sole-access) privilege,
	// invalidating other copies (read-with-intent-to-modify).
	ReadX
	// Upgrade gains write privilege for a block the requester already
	// holds: the one-cycle bus invalidate signal of Feature 4.
	Upgrade
	// WriteWord writes a single word through to main memory
	// (classic write-through, and Goodman's first-write-through).
	// Other caches invalidate (or, under Rudolph-Segall, take the word).
	WriteWord
	// UpdateWord broadcasts a single written word to other caches
	// holding the block (Dragon/Firefly write-update for shared data).
	UpdateWord
	// Flush writes a whole dirty block back to main memory (eviction,
	// or a flush forced by the protocol).
	Flush
	// Unlock broadcasts that a block has been unlocked so that
	// busy-wait registers can join the next arbitration (Section E.4,
	// Figure 8). One cycle; carries no data.
	Unlock
	// WriteNoFetch gains write privilege for a block that the
	// requester will overwrite entirely, without fetching it
	// (Feature 9: saving process state).
	WriteNoFetch
	// IORead is an I/O processor's special read for non-paging output:
	// the source cache supplies the block but keeps source status
	// (Section E.2).
	IORead
	// IOWrite is an I/O processor's input operation: it writes the
	// block to memory and invalidates it in all caches (Section E.2).
	IOWrite
)

var cmdNames = [...]string{
	None: "none", Read: "read", ReadX: "readx", Upgrade: "upgrade",
	WriteWord: "writeword", UpdateWord: "updateword", Flush: "flush",
	Unlock: "unlock", WriteNoFetch: "writenofetch", IORead: "ioread",
	IOWrite: "iowrite",
}

// String implements fmt.Stringer.
func (c Cmd) String() string {
	if int(c) < len(cmdNames) {
		return cmdNames[c]
	}
	return fmt.Sprintf("cmd(%d)", uint8(c))
}

// cmdCounterNames precomputes the "bus.<cmd>" statistic keys so the
// per-transaction hot paths never build a string.
var cmdCounterNames = func() (n [len(cmdNames)]string) {
	for c := range n {
		n[c] = "bus." + cmdNames[c]
	}
	return
}()

// CounterName returns the "bus.<cmd>" statistics key without
// allocating.
func (c Cmd) CounterName() string {
	if int(c) < len(cmdCounterNames) {
		return cmdCounterNames[c]
	}
	return "bus." + c.String()
}

// Lines is the set of wired-OR response lines observed during a
// transaction. Any snooper (or memory) may assert a line; nobody can
// deassert one.
type Lines struct {
	Hit       bool // some other cache holds a valid copy of the block
	SourceHit bool // a source cache responded and supplies the data
	Dirty     bool // the supplied block's clean/dirty status (Feature 7 "S")
	Locked    bool // the block is locked in a cache (or memory lock tag); request denied
	Inhibit   bool // memory must not respond; a cache supplies the data
}

// Transaction is one bus operation. The requester's cache fills the
// request fields; snoopers and memory fill the response fields while
// the transaction is broadcast.
type Transaction struct {
	Cmd       Cmd
	Block     addr.Block
	Addr      addr.Addr // word address for word-granularity commands
	Requester int       // cache ID; -1 for an I/O processor

	LockIntent   bool   // ReadX/Upgrade issued by a lock operation (Section E.3)
	UnlockIntent bool   // ReadX re-fetch by the lock owner after a lock purge
	AfterWait    bool   // re-arbitrated fetch after an Unlock broadcast (Figure 9)
	MemUpdate    bool   // UpdateWord must also update memory (Firefly)
	WordData     uint64 // data for WriteWord/UpdateWord

	// Response state, filled during broadcast.
	Lines     Lines
	BlockData []uint64 // block contents supplied by a source cache, memory, or flusher
	Suppliers []int    // cache IDs that offered to supply (Illinois arbitrates, Feature 8 ARB)
	Flushed   bool     // a snooper flushed the block to memory during the transfer

	SupplyWordCount int    // bus words the supplier moved (transfer-unit mode, Section D.3)
	DirtyUnits      []bool // per-unit dirty bits travelling with the block (Feature 7 "NF,S")

	// blockBuf/dirtyBuf are retained scratch storage behind
	// SupplyBlock/SupplyDirty, so a pooled Transaction supplies data
	// without allocating. BlockData/DirtyUnits alias them only until
	// the transaction completes; consumers copy what they keep.
	blockBuf []uint64
	dirtyBuf []bool
}

// Reset clears t for reuse as a fresh transaction while keeping its
// scratch buffers, so engines can run every transaction through one
// pooled record with zero steady-state allocation.
func (t *Transaction) Reset() {
	blockBuf, dirtyBuf, suppliers := t.blockBuf, t.dirtyBuf, t.Suppliers
	*t = Transaction{blockBuf: blockBuf, dirtyBuf: dirtyBuf}
	if suppliers != nil {
		t.Suppliers = suppliers[:0]
	}
}

// SupplyBlock copies words into t's scratch block buffer and points
// BlockData at it — the no-allocation form of the supplier pattern
// `t.BlockData = copyOf(words)`.
func (t *Transaction) SupplyBlock(words []uint64) {
	if cap(t.blockBuf) < len(words) {
		t.blockBuf = make([]uint64, len(words))
	}
	t.blockBuf = t.blockBuf[:len(words)]
	copy(t.blockBuf, words)
	t.BlockData = t.blockBuf
}

// Clone returns a deep copy of t that is safe to retain: the engines
// pool and reset their transaction records, so a snooper that keeps
// transactions (monitors, recorders) must copy what it sees.
func (t *Transaction) Clone() *Transaction {
	cp := *t
	cp.blockBuf, cp.dirtyBuf = nil, nil
	if t.BlockData != nil {
		cp.BlockData = append([]uint64(nil), t.BlockData...)
	}
	if t.DirtyUnits != nil {
		cp.DirtyUnits = append([]bool(nil), t.DirtyUnits...)
	}
	if t.Suppliers != nil {
		cp.Suppliers = append([]int(nil), t.Suppliers...)
	}
	return &cp
}

// SupplyDirty copies units into t's scratch dirty buffer and points
// DirtyUnits at it (Feature 7 "NF,S": dirty bits travel with the
// supplied block).
func (t *Transaction) SupplyDirty(units []bool) {
	if cap(t.dirtyBuf) < len(units) {
		t.dirtyBuf = make([]bool, len(units))
	}
	t.dirtyBuf = t.dirtyBuf[:len(units)]
	copy(t.dirtyBuf, units)
	t.DirtyUnits = t.dirtyBuf
}

// String renders the transaction for traces and figure reproduction.
func (t *Transaction) String() string {
	s := fmt.Sprintf("%s blk=%d req=%d", t.Cmd, t.Block, t.Requester)
	if t.LockIntent {
		s += " lock"
	}
	if t.AfterWait {
		s += " afterwait"
	}
	return s
}

// Snooper is the bus-side interface of a cache (its bus directory and
// controller). Snoop runs for every transaction the snooper did not
// itself issue; it may assert response lines, supply data, and change
// local line state.
type Snooper interface {
	ID() int
	Snoop(t *Transaction)
}

// request is one pending arbitration entry.
type request struct {
	id   int
	high bool  // most-significant priority bit (busy-wait re-arbitration)
	at   int64 // time the request was raised
}

// Bus is the shared broadcast bus: an arbiter plus the snooper
// broadcast fan-out.
type Bus struct {
	snoopers   []Snooper
	pending    []request
	lastWinner int

	Counts stats.Counters // bus.<cmd> transaction counts
	cmdH   [len(cmdNames)]*int64
}

// CountTxn bumps the bus.<cmd> counter through a cached handle, so
// the per-transaction path avoids a map lookup.
func (b *Bus) CountTxn(cmd Cmd) {
	if int(cmd) >= len(b.cmdH) {
		b.Counts.Inc(cmd.CounterName())
		return
	}
	h := b.cmdH[cmd]
	if h == nil {
		h = b.Counts.Handle(cmd.CounterName())
		b.cmdH[cmd] = h
	}
	*h++
}

// New returns an empty bus. Attach snoopers before use.
func New() *Bus {
	return &Bus{lastWinner: -1}
}

// Attach registers a snooper (cache). Snoopers must have distinct IDs.
func (b *Bus) Attach(s Snooper) {
	b.snoopers = append(b.snoopers, s)
}

// SnoopersFrom returns the snoopers attached at index n and beyond.
// The sim engine fans transactions out to its caches directly (they
// are always the first attachments) and uses this to reach anything
// attached afterwards — bus monitors, test probes.
func (b *Bus) SnoopersFrom(n int) []Snooper {
	if n >= len(b.snoopers) {
		return nil
	}
	return b.snoopers[n:]
}

// Request enqueues an arbitration request for the requester with the
// given priority. A requester may hold at most one pending request;
// duplicate requests are coalesced (the high bit is sticky).
func (b *Bus) Request(id int, high bool) { b.RequestAt(id, high, 0) }

// RequestAt is Request with the issue time recorded, so a multi-bus
// engine can overlap transactions correctly: a bus never grants a
// request before it was raised.
func (b *Bus) RequestAt(id int, high bool, at int64) {
	for i := range b.pending {
		if b.pending[i].id == id {
			b.pending[i].high = b.pending[i].high || high
			if at < b.pending[i].at {
				b.pending[i].at = at
			}
			return
		}
	}
	b.pending = append(b.pending, request{id: id, high: high, at: at})
}

// EarliestRequest returns the earliest issue time among pending
// requests (0 if none are pending — check HasPending first).
func (b *Bus) EarliestRequest() int64 {
	var min int64
	for i, r := range b.pending {
		if i == 0 || r.at < min {
			min = r.at
		}
	}
	return min
}

// Withdraw removes a pending request, if present. Used when a
// busy-waiting cache sees the lock taken by another waiter and backs
// off without retrying (Figure 9).
func (b *Bus) Withdraw(id int) {
	for i := range b.pending {
		if b.pending[i].id == id {
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			return
		}
	}
}

// HasPending reports whether any request is waiting for the bus.
func (b *Bus) HasPending() bool { return len(b.pending) > 0 }

// Pending returns the IDs of all pending requesters (for tests).
func (b *Bus) Pending() []int {
	ids := make([]int, len(b.pending))
	for i, r := range b.pending {
		ids[i] = r.id
	}
	return ids
}

// Arbitrate removes and returns the next winner: high-priority
// requests first (the reserved busy-wait priority bit), round-robin
// within a class starting after the previous winner. ok is false when
// no request is pending.
func (b *Bus) Arbitrate() (id int, ok bool) {
	return b.ArbitrateAt(1<<62 - 1)
}

// ArbitrateAt arbitrates among requests raised at or before now;
// later requests are not yet visible to the arbiter.
func (b *Bus) ArbitrateAt(now int64) (id int, ok bool) {
	best := -1
	bestKey := 0
	for i, r := range b.pending {
		if r.at > now {
			continue
		}
		// Round-robin distance from the last winner; smaller is better.
		d := r.id - b.lastWinner
		if d <= 0 {
			d += 1 << 30
		}
		key := d
		if r.high {
			key -= 1 << 31 // high priority always beats low
		}
		if best == -1 || key < bestKey {
			best, bestKey = i, key
		}
	}
	if best == -1 {
		return 0, false
	}
	id = b.pending[best].id
	b.pending = append(b.pending[:best], b.pending[best+1:]...)
	b.lastWinner = id
	return id, true
}

// Broadcast delivers the transaction to every snooper except the
// requester and counts it. Snoopers assert lines and may supply data.
func (b *Bus) Broadcast(t *Transaction) {
	b.CountTxn(t.Cmd)
	for _, s := range b.snoopers {
		if s.ID() == t.Requester {
			continue
		}
		s.Snoop(t)
	}
}
