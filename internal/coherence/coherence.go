// Package coherence machine-checks the paper's two implementation
// requirements (Section C.1) on a simulated system:
//
//  1. serialize conflicting accesses — at most one sole-access holder
//     per block, excluding all other copies;
//  2. provide the latest version — clean copies equal memory, every
//     copy of an update protocol equals the owner's, at most one dirty
//     copy exists, and a single source (except Illinois' by-design
//     multi-source).
//
// It additionally checks lock mutual exclusion across cache lock
// states and memory lock tags (Section E.3).
//
// The invariants are exposed as per-invariant predicates over the raw
// (protocol, caches, memory) surface so that both the online checker
// (sim.System's OnTxn hook, via Check) and the bounded model checker
// (internal/mcheck, via CheckAll on its own machine) share one
// implementation. CheckAll is the hot path of the model checker — it
// runs after every explored transition — so it walks the caches once
// per block and inspects data through non-copying views.
package coherence

import (
	"fmt"
	"sort"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
)

// HeldBlocks returns the sorted union of blocks any cache currently
// holds valid.
func HeldBlocks(caches []*cache.Cache) []addr.Block {
	seen := map[addr.Block]bool{}
	for _, c := range caches {
		for b := range c.Blocks() {
			seen[b] = true
		}
	}
	out := make([]addr.Block, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// blockHolders is the per-block view of the caches, gathered once and
// shared by the per-invariant predicates: IDs, states, and read-only
// data views of every valid copy.
type blockHolders struct {
	ids    []int
	states []protocol.State
	datas  [][]uint64
}

func (h *blockHolders) gather(caches []*cache.Cache, b addr.Block) {
	h.ids, h.states, h.datas = h.ids[:0], h.states[:0], h.datas[:0]
	for _, c := range caches {
		// One tag lookup per cache: FrameView finds the frame once and
		// hands back state and data together (State+DataView would walk
		// the set twice).
		st, data, ok := c.FrameView(b)
		if !ok || st == protocol.Invalid {
			continue
		}
		h.ids = append(h.ids, c.ID())
		h.states = append(h.states, st)
		h.datas = append(h.datas, data)
	}
}

// CheckSerialization verifies requirement 1 for block b: at most one
// sole-access (write or lock privilege) holder, and if one exists, no
// other valid copy — except under update protocols, where shared
// copies are exact duplicates kept consistent by word broadcasts.
func CheckSerialization(p protocol.Protocol, caches []*cache.Cache, b addr.Block) []string {
	var h blockHolders
	h.gather(caches, b)
	return serializationViolations(p, &h, b, nil)
}

func serializationViolations(p protocol.Protocol, h *blockHolders, b addr.Block, out []string) []string {
	writers := 0
	for _, st := range h.states {
		if p.Privilege(st) >= protocol.PrivWrite {
			writers++
		}
	}
	if writers > 1 {
		out = append(out, fmt.Sprintf("block %d: %d sole-access holders (caches %v)", b, writers, h.ids))
	}
	if writers == 1 && len(h.ids) > 1 {
		out = append(out, fmt.Sprintf("block %d: sole-access holder coexists with %d copies (caches %v)", b, len(h.ids)-1, h.ids))
	}
	return out
}

// CheckSingleSource verifies that at most one cache carries source
// status for block b, except for protocols whose Feature 8 policy is
// "ARB" (Illinois: multiple sources, bus arbitration selects one).
func CheckSingleSource(p protocol.Protocol, caches []*cache.Cache, b addr.Block) []string {
	var h blockHolders
	h.gather(caches, b)
	f := p.Features()
	return singleSourceViolations(p, &f, &h, b, nil)
}

func singleSourceViolations(p protocol.Protocol, f *protocol.Features, h *blockHolders, b addr.Block, out []string) []string {
	if f.SourcePolicy == "ARB" {
		return out
	}
	sources := 0
	for _, st := range h.states {
		if p.IsSource(st) {
			sources++
		}
	}
	if sources > 1 {
		out = append(out, fmt.Sprintf("block %d: %d sources under %s (caches %v)", b, sources, p.Name(), h.ids))
	}
	return out
}

// CheckLatestVersion verifies requirement 2 for block b with real
// data: at most one dirty copy; when no copy is dirty, every copy
// equals memory; under update protocols, every copy equals the dirty
// owner's.
func CheckLatestVersion(p protocol.Protocol, caches []*cache.Cache, mem *memory.Memory, b addr.Block) []string {
	var h blockHolders
	h.gather(caches, b)
	f := p.Features()
	return latestVersionViolations(p, &f, &h, mem, b, nil)
}

func latestVersionViolations(p protocol.Protocol, f *protocol.Features, h *blockHolders, mem *memory.Memory, b addr.Block, out []string) []string {
	dirties := 0
	var dirtyData []uint64
	for i, st := range h.states {
		if p.IsDirty(st) {
			dirties++
			dirtyData = h.datas[i]
		}
	}
	if dirties > 1 {
		out = append(out, fmt.Sprintf("block %d: %d dirty copies", b, dirties))
	}
	if dirties == 0 {
		memData := mem.BlockView(b)
		for i, cp := range h.datas {
			if !equal(cp, memData) {
				out = append(out, fmt.Sprintf("block %d: clean copy %d diverges from memory: %v vs %v",
					b, h.ids[i], cp, memData))
			}
		}
	} else if f.Policy == protocol.PolicyUpdate {
		for i, cp := range h.datas {
			if !equal(cp, dirtyData) {
				out = append(out, fmt.Sprintf("block %d: update-protocol copy %d diverges from owner: %v vs %v",
					b, h.ids[i], cp, dirtyData))
			}
		}
	}
	return out
}

// CheckLockMutex verifies lock mutual exclusion for block b across
// both representations a lock can take: cache lines in a lock state,
// and the memory lock tag a purged lock leaves behind (Section E.3).
// At most one lock may exist, and a memory lock tag must not coexist
// with a lock state in a cache other than the recorded owner.
func CheckLockMutex(p protocol.Protocol, caches []*cache.Cache, mem *memory.Memory, b addr.Block) []string {
	var h blockHolders
	h.gather(caches, b)
	return lockMutexViolations(p, &h, mem, b, nil)
}

func lockMutexViolations(p protocol.Protocol, h *blockHolders, mem *memory.Memory, b addr.Block, out []string) []string {
	var lockers []int
	for i, st := range h.states {
		if p.Privilege(st) == protocol.PrivLock {
			lockers = append(lockers, h.ids[i])
		}
	}
	if len(lockers) > 1 {
		out = append(out, fmt.Sprintf("block %d: locked by %d caches %v", b, len(lockers), lockers))
	}
	if tag := mem.GetLockTag(b); tag.Locked {
		for _, id := range lockers {
			if id != tag.Owner {
				out = append(out, fmt.Sprintf("block %d: memory lock tag owned by %d coexists with cache lock in %d",
					b, tag.Owner, id))
			}
		}
	}
	return out
}

// CheckAll runs every invariant over the given blocks (when blocks is
// nil, over every block any cache holds — note that nil then skips
// memory-lock-tag-only blocks, so pass the block universe explicitly
// when lock purges are possible).
func CheckAll(p protocol.Protocol, caches []*cache.Cache, mem *memory.Memory, blocks []addr.Block) []string {
	return NewChecker(p).Check(caches, mem, blocks)
}

// Checker is the full invariant suite bound to one protocol, with the
// Features descriptor computed once and per-block scratch reused
// across calls. The model checker runs a check after every explored
// transition: rebuilding the descriptor (it contains a map) and
// regrowing the holder slices per call would dominate the check, so
// each exploration worker holds one Checker for its whole run. A
// Checker is not safe for concurrent use.
type Checker struct {
	p protocol.Protocol
	f protocol.Features
	h blockHolders
}

// NewChecker builds a Checker for p.
func NewChecker(p protocol.Protocol) *Checker {
	return &Checker{p: p, f: p.Features()}
}

// Check runs every invariant over the given blocks, with the same
// nil-blocks caveat as CheckAll. The returned slice is nil when the
// state is coherent.
func (ck *Checker) Check(caches []*cache.Cache, mem *memory.Memory, blocks []addr.Block) []string {
	if blocks == nil {
		blocks = HeldBlocks(caches)
	}
	var out []string
	for _, b := range blocks {
		ck.h.gather(caches, b)
		out = serializationViolations(ck.p, &ck.h, b, out)
		out = singleSourceViolations(ck.p, &ck.f, &ck.h, b, out)
		out = latestVersionViolations(ck.p, &ck.f, &ck.h, mem, b, out)
		out = lockMutexViolations(ck.p, &ck.h, mem, b, out)
	}
	return out
}

// Check validates every block any cache currently holds and returns a
// list of violations (empty when coherent). Run post-quiescence or,
// via sim.System's OnTxn hook, after every bus transaction.
func Check(s *sim.System) []string {
	return CheckAll(s.Protocol(), s.Caches, s.Mem, nil)
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
