// Package coherence machine-checks the paper's two implementation
// requirements (Section C.1) on a simulated system:
//
//  1. serialize conflicting accesses — at most one sole-access holder
//     per block, excluding all other copies;
//  2. provide the latest version — clean copies equal memory, every
//     copy of an update protocol equals the owner's, at most one dirty
//     copy exists, and a single source (except Illinois' by-design
//     multi-source).
//
// Check can be run post-quiescence or, via sim.System's OnTxn hook,
// after every bus transaction (online checking in the conformance
// tests).
package coherence

import (
	"fmt"

	"cachesync/internal/addr"
	"cachesync/internal/protocol"
	"cachesync/internal/sim"
)

// Check validates every block any cache currently holds and returns a
// list of violations (empty when coherent).
func Check(s *sim.System) []string {
	var out []string
	p := s.Protocol()
	update := p.Features().Policy == protocol.PolicyUpdate

	blocks := map[addr.Block]bool{}
	for _, c := range s.Caches {
		for b := range c.Blocks() {
			blocks[b] = true
		}
	}
	for b := range blocks {
		var writers, dirties, sources, valids int
		var dirtyData []uint64
		var copies [][]uint64
		var holders []int
		for _, c := range s.Caches {
			st := c.State(b)
			if st == protocol.Invalid {
				continue
			}
			valids++
			holders = append(holders, c.ID())
			d := c.Data(b)
			copies = append(copies, d)
			if p.Privilege(st) >= protocol.PrivWrite {
				writers++
			}
			if p.IsDirty(st) {
				dirties++
				dirtyData = d
			}
			if p.IsSource(st) {
				sources++
			}
		}
		if writers > 1 {
			out = append(out, fmt.Sprintf("block %d: %d sole-access holders (caches %v)", b, writers, holders))
		}
		if writers == 1 && valids > 1 {
			out = append(out, fmt.Sprintf("block %d: sole-access holder coexists with %d copies (caches %v)", b, valids-1, holders))
		}
		if dirties > 1 {
			out = append(out, fmt.Sprintf("block %d: %d dirty copies", b, dirties))
		}
		if sources > 1 && p.Features().SourcePolicy != "ARB" {
			out = append(out, fmt.Sprintf("block %d: %d sources under %s", b, sources, p.Name()))
		}
		memData := s.Mem.ReadBlock(b)
		if dirties == 0 {
			for i, cp := range copies {
				if !equal(cp, memData) {
					out = append(out, fmt.Sprintf("block %d: clean copy %d diverges from memory: %v vs %v",
						b, holders[i], cp, memData))
				}
			}
		} else if update {
			for i, cp := range copies {
				if !equal(cp, dirtyData) {
					out = append(out, fmt.Sprintf("block %d: update-protocol copy %d diverges from owner: %v vs %v",
						b, holders[i], cp, dirtyData))
				}
			}
		}
	}
	return out
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
