// Deliberate-corruption tests: each test hand-builds a system state
// that breaks exactly one invariant class and asserts the matching
// predicate reports it (and that an uncorrupted twin stays clean).
// The model checker proves these states unreachable through the
// protocols; here we construct them directly to prove the checker
// would catch them if a protocol ever produced one.
package coherence

import (
	"strings"
	"testing"

	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/core"
	"cachesync/internal/memory"
	"cachesync/internal/protocol"
	"cachesync/internal/protocol/dragon"
	"cachesync/internal/protocol/illinois"
)

// rig builds n caches over one shared memory with 2-word blocks.
func rig(t *testing.T, p protocol.Protocol, n int) ([]*cache.Cache, *memory.Memory) {
	t.Helper()
	geom := addr.MustGeometry(2, 2)
	mem := memory.New(geom)
	caches := make([]*cache.Cache, n)
	for i := range caches {
		caches[i] = cache.New(i, geom, p, cache.Config{Sets: 1, Ways: 2}, mem)
	}
	return caches, mem
}

func wantViolation(t *testing.T, got []string, substr string) {
	t.Helper()
	for _, v := range got {
		if strings.Contains(v, substr) {
			return
		}
	}
	t.Fatalf("no violation containing %q; got %v", substr, got)
}

func TestCleanStateReportsNothing(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 2)
	mem.WriteBlock(0, []uint64{7, 8})
	caches[0].Install(0, []uint64{7, 8}, core.R)
	caches[1].Install(0, []uint64{7, 8}, core.R)
	if v := CheckAll(p, caches, mem, nil); len(v) != 0 {
		t.Fatalf("clean state flagged: %v", v)
	}
}

func TestSerializationTwoWriters(t *testing.T) {
	p := core.Protocol{}
	caches, _ := rig(t, p, 2)
	caches[0].Install(0, []uint64{1, 0}, core.WSD)
	caches[1].Install(0, []uint64{2, 0}, core.WSD)
	wantViolation(t, CheckSerialization(p, caches, 0), "2 sole-access holders")
}

func TestSerializationWriterCoexistsWithCopy(t *testing.T) {
	p := core.Protocol{}
	caches, _ := rig(t, p, 2)
	caches[0].Install(0, []uint64{1, 0}, core.WSD)
	caches[1].Install(0, []uint64{0, 0}, core.R)
	wantViolation(t, CheckSerialization(p, caches, 0), "coexists with 1 copies")
}

func TestSingleSourceTwoSources(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 2)
	mem.WriteBlock(0, []uint64{5, 5})
	// R.S.C is a source (supplies on the bus) but clean and read-only,
	// so only the single-source invariant trips.
	caches[0].Install(0, []uint64{5, 5}, core.RSC)
	caches[1].Install(0, []uint64{5, 5}, core.RSC)
	wantViolation(t, CheckSingleSource(p, caches, 0), "2 sources")
	if v := CheckSerialization(p, caches, 0); len(v) != 0 {
		t.Fatalf("serialization should be clean here: %v", v)
	}
}

func TestSingleSourceARBExempt(t *testing.T) {
	p := illinois.Protocol{}
	caches, mem := rig(t, p, 2)
	mem.WriteBlock(0, []uint64{5, 5})
	// Illinois keeps every valid copy a source by design; bus
	// arbitration picks one (SourcePolicy "ARB"), so two shared
	// sources are legal.
	caches[0].Install(0, []uint64{5, 5}, illinois.SH)
	caches[1].Install(0, []uint64{5, 5}, illinois.SH)
	if v := CheckSingleSource(p, caches, 0); len(v) != 0 {
		t.Fatalf("ARB protocol wrongly flagged: %v", v)
	}
}

func TestLatestVersionCleanDiverges(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 1)
	mem.WriteBlock(0, []uint64{9, 9})
	caches[0].Install(0, []uint64{9, 1}, core.R)
	wantViolation(t, CheckLatestVersion(p, caches, mem, 0), "diverges from memory")
}

func TestLatestVersionTwoDirty(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 2)
	caches[0].Install(0, []uint64{1, 0}, core.RSD)
	caches[1].Install(0, []uint64{2, 0}, core.RSD)
	wantViolation(t, CheckLatestVersion(p, caches, mem, 0), "2 dirty copies")
}

func TestLatestVersionUpdateCopyDiverges(t *testing.T) {
	p := dragon.Protocol{}
	caches, mem := rig(t, p, 2)
	// Dragon is an update protocol: shared copies must mirror the
	// dirty owner word for word.
	caches[0].Install(0, []uint64{4, 4}, dragon.SD)
	caches[1].Install(0, []uint64{4, 3}, dragon.SC)
	wantViolation(t, CheckLatestVersion(p, caches, mem, 0), "diverges from owner")
}

func TestLockMutexTwoLockers(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 2)
	caches[0].Install(0, []uint64{1, 0}, core.LSD)
	caches[1].Install(0, []uint64{2, 0}, core.LSD)
	wantViolation(t, CheckLockMutex(p, caches, mem, 0), "locked by 2 caches")
}

func TestLockMutexTagOwnerMismatch(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 2)
	caches[1].Install(0, []uint64{1, 0}, core.LSD)
	mem.SetLockTag(0, memory.LockTag{Locked: true, Owner: 0})
	wantViolation(t, CheckLockMutex(p, caches, mem, 0), "lock tag owned by 0 coexists with cache lock in 1")
}

func TestCheckAllAggregatesClasses(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 3)
	mem.WriteBlock(1, []uint64{6, 6})
	caches[0].Install(0, []uint64{1, 0}, core.WSD) // two writers on block 0
	caches[1].Install(0, []uint64{2, 0}, core.WSD)
	caches[2].Install(1, []uint64{6, 0}, core.R) // stale clean copy on block 1
	got := CheckAll(p, caches, mem, nil)
	wantViolation(t, got, "2 sole-access holders")
	wantViolation(t, got, "2 dirty copies")
	wantViolation(t, got, "diverges from memory")
	if len(got) < 3 {
		t.Fatalf("expected at least 3 violations, got %v", got)
	}
}

func TestCheckAllExplicitUniverseSeesTagOnlyBlock(t *testing.T) {
	p := core.Protocol{}
	caches, mem := rig(t, p, 2)
	// A purged lock leaves only a memory tag — no cache holds the
	// block, so the nil-universe walk cannot see it, but an explicit
	// universe plus a stray cache lock elsewhere still cross-checks.
	caches[1].Install(0, []uint64{1, 0}, core.LSD)
	mem.SetLockTag(0, memory.LockTag{Locked: true, Owner: 0})
	got := CheckAll(p, caches, mem, []addr.Block{0, 1})
	wantViolation(t, got, "coexists with cache lock in 1")
}
