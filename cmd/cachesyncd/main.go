// Command cachesyncd serves the repository's engines over HTTP/JSON:
// simulations (POST /v1/simulate), bounded model checks (POST
// /v1/check), protocol×procs sweeps (POST /v1/sweep), NDJSON progress
// streams (GET /v1/jobs/{id}), liveness (GET /healthz), Prometheus
// metrics (GET /metrics), and — with -pprof, for operators — the
// net/http/pprof diagnostics (GET /debug/pprof/), which bypass
// admission and metrics and keep working during drain.
//
//	go run ./cmd/cachesyncd -addr 127.0.0.1:8344 -workers 4 -queue 64
//	curl -d '{"protocol":"bitar","ops":500}' localhost:8344/v1/simulate
//	curl -d '{"protocol":"bitar","inject":"drop-invalidate"}' localhost:8344/v1/check
//
// Requests execute on a bounded worker pool behind an admission queue:
// overload is shed at the edge with 429 + Retry-After rather than
// queued without bound. Identical concurrent requests collapse onto
// one execution (single flight), and -cachedir adds an on-disk result
// cache shared with the pool, so repeated configurations are answered
// from disk across restarts. SIGINT/SIGTERM drains gracefully:
// in-flight requests finish, new ones are rejected with 503.
//
// -peerdir joins a fleet artifact exchange: daemons sharing the
// directory discover each other through their portfiles and serve each
// other's cached results (GET /v1/artifact/{key}) on a local cache
// miss, so a result computed anywhere in the fleet is a hit everywhere.
// cmd/cachesyncc spawns and routes such a fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cachesync/internal/portfile"
	_ "cachesync/internal/protocol/all"
	"cachesync/internal/runner"
	"cachesync/internal/serve"
)

var (
	addr      = flag.String("addr", "127.0.0.1:8344", "listen address (use :0 for an ephemeral port)")
	portPath  = flag.String("portfile", "", "write the bound host:port to this file once listening (for scripts using -addr :0)")
	workers   = flag.Int("workers", 0, "concurrent executions (0 = GOMAXPROCS)")
	sweepW    = flag.Int("sweep-workers", 0, "concurrent cells within one sweep request (0 = workers); output is identical at any setting")
	queue     = flag.Int("queue", 64, "admitted requests that may wait for a slot; beyond this arrivals get 429")
	timeout   = flag.Duration("timeout", 60*time.Second, "default per-request execution deadline (callers may lower it with ?timeout=)")
	maxTime   = flag.Duration("maxtimeout", 5*time.Minute, "upper clamp on caller-requested deadlines")
	cacheDir  = flag.String("cachedir", "", "on-disk result cache directory (empty = no cache)")
	peerDir   = flag.String("peerdir", "", "shared portfile directory for the fleet artifact exchange: on a local cache miss, ask the replicas registered here before computing (needs -cachedir)")
	grace     = flag.Duration("grace", 30*time.Second, "shutdown grace period for draining in-flight requests")
	pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (operator diagnostics; enable only on loopback or an admin-restricted listener)")
	shardCkpt = flag.String("shard-checkpoints", "", "directory where hosted shard sessions checkpoint after every level; point the whole fleet at one shared directory and distributed checks survive replica death")
)

func run() error {
	var cache *runner.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = runner.OpenCache(*cacheDir); err != nil {
			return err
		}
	}
	var peers *serve.PeerSource
	if *peerDir != "" {
		if cache == nil {
			return fmt.Errorf("-peerdir needs -cachedir: the artifact exchange trades result-cache entries")
		}
		peers = serve.NewPeerSource(*peerDir)
	}
	s := serve.New(serve.Config{
		Workers: *workers, SweepWorkers: *sweepW, Queue: *queue,
		DefaultTimeout: *timeout, MaxTimeout: *maxTime,
		Cache: cache, Peers: peers, Pprof: *pprofOn,
		ShardCheckpointRoot: *shardCkpt,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if peers != nil {
		peers.SetSelf(ln.Addr().String())
	}
	if *portPath != "" {
		if err := portfile.Write(*portPath, ln.Addr().String()); err != nil {
			return err
		}
		defer os.Remove(*portPath)
	}
	fmt.Printf("cachesyncd listening on %s (workers=%d queue=%d cache=%v)\n",
		ln.Addr(), *workers, *queue, cache != nil)

	hs := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: advertise draining (healthz 503, new work 503),
	// let in-flight requests finish, then stop the pool.
	fmt.Println("cachesyncd: draining")
	s.StartDrain()
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	s.Close()
	fmt.Println("cachesyncd: stopped")
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
