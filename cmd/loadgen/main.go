// Command loadgen drives cachesyncd with a concurrent open-loop load:
// requests fire at a fixed rate regardless of completions (the
// arrival process a real service sees), drawn from a mixed
// distribution of simulations, model checks, and sweeps with rotating
// parameters, and the run reports throughput and latency percentiles.
//
//	go run ./cmd/loadgen -selfhost -rate 25 -duration 3s
//	go run ./cmd/loadgen -addr 127.0.0.1:8344 -rate 50 -duration 10s
//	go run ./cmd/loadgen -portfile /tmp/port -smoke
//
// Two phases enforce the serving SLO:
//
//   - below the admission limit (the main phase), every response must
//     be 2xx — a 429 or 5xx here fails the run;
//   - under deliberate overload (the second phase, ~10× the sustainable
//     demand), the only acceptable non-2xx is a clean 429 from the
//     admission gate — a 5xx, a hang, or a connection error fails.
//
// -out writes the results as a committed baseline (BENCH_serve.json);
// with an existing baseline, -gate F fails the run when achieved
// throughput drops below F × the baseline's (mirroring the
// BENCH_mcheck.json regression gate). -update rewrites the baseline.
// -selfhost embeds the daemon in-process on 127.0.0.1:0, so the
// benchmark needs no process management; -smoke is the one-shot
// health probe verify.sh uses against an externally started daemon.
//
// Fleet runs: -addr takes a comma-separated target list (client-side
// round-robin), or point a single -addr/-portfile at a cachesyncc
// coordinator. -retries honors 429 Retry-After hints with jitter.
// -chaos-kill SIGKILLs a replica (by pidfile) mid-run and summarizes
// the kill window separately — the run still demands zero responses
// that are neither 2xx nor clean 429, and -chaos-recover additionally
// requires the coordinator to report the fleet fully healthy again.
// X-Cache headers are tallied into a fleet cache-hit ratio
// (BENCH_cluster.json's cluster section).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cachesync/internal/portfile"
	_ "cachesync/internal/protocol/all"
	"cachesync/internal/serve"
	"cachesync/internal/stats"
)

var (
	addrFlag    = flag.String("addr", "", "target address (host:port); a comma-separated list round-robins client-side across targets")
	portFlag    = flag.String("portfile", "", "read the target address from this file (polled until it appears)")
	selfhost    = flag.Bool("selfhost", false, "embed the daemon in-process on 127.0.0.1:0")
	shWork      = flag.Int("workers", 0, "selfhost: execution width (0 = GOMAXPROCS)")
	shQueue     = flag.Int("queue", 64, "selfhost: admission queue length")
	profile     = flag.String("profile", "mixed", "main-phase request mix: mixed (simulate/check/sweep rotation) | simheavy (all engine-bound simulations, unique seeds, checker off)")
	rate        = flag.Float64("rate", 25, "open-loop arrival rate, requests/second")
	duration    = flag.Duration("duration", 3*time.Second, "main-phase length")
	conc        = flag.Int("conc", 256, "client-side cap on outstanding requests")
	overload    = flag.Bool("overload", true, "run the overload phase (expect only clean 429s)")
	requireShed = flag.Bool("require-shed", false, "fail if the overload phase sheds nothing (use with -selfhost and pinned -workers/-queue, where capacity is known)")
	smoke       = flag.Bool("smoke", false, "one-shot probe: /healthz, one simulate, one check; then exit")
	smokePprof  = flag.Bool("expect-pprof", false, "with -smoke, also require GET /debug/pprof/cmdline to answer 200 (daemon started with -pprof)")
	wait        = flag.Duration("wait", 15*time.Second, "how long -portfile/-smoke wait for the daemon")
	outFile     = flag.String("out", "", "benchmark baseline file (written if absent, gated if present)")
	gate        = flag.Float64("gate", 0.3, "fail when throughput < gate × baseline throughput")
	update      = flag.Bool("update", false, "rewrite the baseline even if it exists")
	retries     = flag.Int("retries", 2, "main-phase retries of a 429, honoring the server's Retry-After hint plus jitter (0 = report the 429 as-is)")
	warmup      = flag.Duration("warmup", 0, "fire the request mix unmeasured for this long before phase 1")
	chaosKill   = flag.String("chaos-kill", "", "pidfile of a replica to SIGKILL mid-run (fleet chaos; the run still demands zero non-2xx/non-429)")
	chaosAt     = flag.Duration("chaos-at", 300*time.Millisecond, "when after phase-1 start to deliver the chaos kill")
	chaosDur    = flag.Duration("chaos-duration", 1500*time.Millisecond, "reporting window after the kill, summarized separately in the baseline")
	chaosWait   = flag.Bool("chaos-recover", false, "after phase 1, require the target's /healthz to report every replica healthy again (coordinator respawn)")
)

// bench is the BENCH_serve.json schema.
type bench struct {
	Updated       string  `json:"updated"`
	Go            string  `json:"go"`
	Gate          float64 `json:"gate"`
	Profile       string  `json:"profile,omitempty"`
	RateRPS       float64 `json:"rate_rps"`
	DurationS     float64 `json:"duration_s"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Non2xx        int     `json:"non2xx"`
	ClientSkipped int     `json:"client_skipped"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	Retried       int     `json:"retried,omitempty"` // requests that needed a Retry-After-honoring retry
	Overload      *obench `json:"overload,omitempty"`
	Cluster       *cbench `json:"cluster,omitempty"`
	Chaos         *chaosb `json:"chaos,omitempty"`
}

// obench summarizes the overload phase.
type obench struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Shed     int `json:"shed"`  // clean 429s
	Other    int `json:"other"` // anything else: must be zero
}

// cbench is the fleet cache view, computed from X-Cache headers.
type cbench struct {
	Targets   int     `json:"targets"`
	Hits      int     `json:"hits"`
	Coalesced int     `json:"coalesced"`
	Misses    int     `json:"misses"`
	HitRatio  float64 `json:"hit_ratio"` // hits / (hits + misses)
}

// chaosb summarizes the replica-kill window: requests in flight while
// a fleet member was dead must still come back 2xx or clean 429.
type chaosb struct {
	KillAtS   float64 `json:"kill_at_s"`
	WindowS   float64 `json:"window_s"`
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Shed      int     `json:"shed"`
	Other     int     `json:"other"` // must be zero
	Recovered bool    `json:"recovered,omitempty"`
}

type result struct {
	code    int
	dur     time.Duration
	err     error
	at      time.Time // send time, for chaos-window attribution
	xcache  string    // X-Cache header: hit | coalesced | miss
	retried bool
}

// protocols rotated through by the mixed distribution.
var mixProtocols = []string{"bitar", "illinois", "goodman", "berkeley"}

// request builds the i-th request of the deterministic mix: 70%
// simulations over 16 rotating seeds, 20% model checks over rotating
// protocols, 10% small sweeps. Rotating parameters defeat the daemon's
// dedup/cache enough that the pool does real work, while the repeats
// exercise the coalescing and cache paths too.
//
// The heavy (overload) mix is all simulations with a unique seed per
// request: every request then needs its own execution slot — the
// single-flight dedup cannot absorb the burst — so the admission gate
// itself is what gets exercised.
func request(i int, heavy bool) (path string, body map[string]any) {
	// The simheavy profile is all simulation, sized so the simulator
	// core — not the result cache, dedup, or coherence checker —
	// dominates each request: unique seeds defeat caching, and the
	// checker is off because it costs a full-machine scan per bus
	// transaction and would drown the engine being measured. This is
	// the profile where the direct-execution engine shows up in
	// serving throughput.
	if *profile == "simheavy" && !heavy {
		return "/v1/simulate", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"procs":    8,
			"ops":      2_000,
			"seed":     1 + i,
			"nocheck":  true,
		}
	}
	if heavy {
		return "/v1/simulate", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"ops":      1_000,
			"seed":     1 + i,
		}
	}
	switch {
	case i%10 < 7:
		return "/v1/simulate", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"ops":      200,
			"seed":     1 + i%16,
		}
	case i%10 < 9:
		return "/v1/check", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"depth":    4,
		}
	default:
		return "/v1/sweep", map[string]any{
			"protocols": []string{mixProtocols[i%len(mixProtocols)]},
			"procs":     []int{1, 2},
			"ops":       100,
			"seed":      1 + i%16,
		}
	}
}

func post(client *http.Client, base, path string, body any) result {
	buf, err := json.Marshal(body)
	if err != nil {
		return result{err: err}
	}
	t0 := time.Now()
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return result{err: err, dur: time.Since(t0), at: t0}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	r := result{code: resp.StatusCode, dur: time.Since(t0), at: t0, xcache: resp.Header.Get("X-Cache")}
	if r.code == http.StatusTooManyRequests {
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			r.dur = time.Duration(s) * time.Second // reused as the hint, not a latency
		}
	}
	return r
}

// postRetry posts and, when the server sheds with a 429, honors its
// Retry-After hint (clamped to a second, fuzzed with jitter so a
// synchronized burst doesn't re-arrive as a synchronized burst) up to
// maxRetries times. The returned latency covers the whole exchange,
// backoff included — the client-visible cost of being shed.
func postRetry(client *http.Client, base, path string, body any, maxRetries int, jit *lockedRand) result {
	t0 := time.Now()
	var r result
	for attempt := 0; ; attempt++ {
		r = post(client, base, path, body)
		if attempt >= maxRetries || r.err != nil || r.code != http.StatusTooManyRequests {
			break
		}
		hint := r.dur
		if hint <= 0 || hint > time.Second {
			hint = time.Second
		}
		time.Sleep(hint/2 + jit.durn(hint/2))
		r.retried = true
	}
	retried := r.retried
	r = result{code: r.code, err: r.err, xcache: r.xcache, at: t0, dur: time.Since(t0), retried: retried}
	return r
}

// lockedRand is a mutex-guarded jitter source shared by the phase
// workers; seeded fixed so runs are as repeatable as scheduling allows.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand() *lockedRand { return &lockedRand{r: rand.New(rand.NewSource(1))} }

func (l *lockedRand) durn(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.r.Int63n(int64(max)))
}

// phase fires requests open-loop at rps for dur, capping outstanding
// requests at conc (ticks beyond the cap are counted, not sent — a
// client-side saturation signal, not a server verdict). heavy selects
// the overload mix. Request indices start at off so phases draw
// different slices of the rotation. Multiple bases are rotated
// per-request (client-side load balancing across targets).
func phase(client *http.Client, bases []string, rps float64, dur time.Duration, conc int, off int, heavy bool) ([]result, int) {
	interval := time.Duration(float64(time.Second) / rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(dur)

	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
		skipped int
	)
	slots := make(chan struct{}, conc)
	jit := newLockedRand()
	i := off
	for {
		select {
		case <-deadline:
			wg.Wait()
			return results, skipped
		case <-ticker.C:
			select {
			case slots <- struct{}{}:
			default:
				skipped++
				continue
			}
			path, body := request(i, heavy)
			base := bases[i%len(bases)]
			i++
			wg.Add(1)
			go func() {
				defer wg.Done()
				var r result
				if heavy || *retries <= 0 {
					r = post(client, base, path, body)
				} else {
					r = postRetry(client, base, path, body, *retries, jit)
				}
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
				<-slots
			}()
		}
	}
}

// waitHealthy polls /healthz until it answers 200.
func waitHealthy(client *http.Client, base string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon not healthy after %v: %v", limit, err)
			}
			return fmt.Errorf("daemon not healthy after %v", limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// resolveBases finds the targets: -addr (possibly a comma list),
// -portfile (polled until complete), or -selfhost. The returned stop
// function tears selfhost down.
func resolveBases() (bases []string, stop func(), err error) {
	stop = func() {}
	switch {
	case *selfhost:
		s := serve.New(serve.Config{Workers: *shWork, Queue: *shQueue})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, stop, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return []string{"http://" + ln.Addr().String()}, func() {
			_ = hs.Close()
			s.Close()
		}, nil
	case *addrFlag != "":
		for _, a := range strings.Split(*addrFlag, ",") {
			if a = strings.TrimSpace(a); a != "" {
				bases = append(bases, "http://"+a)
			}
		}
		if len(bases) == 0 {
			return nil, stop, fmt.Errorf("-addr lists no usable address")
		}
		return bases, stop, nil
	case *portFlag != "":
		ctx, cancel := context.WithTimeout(context.Background(), *wait)
		defer cancel()
		addr, err := portfile.Wait(ctx, *portFlag)
		if err != nil {
			return nil, stop, fmt.Errorf("portfile %s did not appear within %v", *portFlag, *wait)
		}
		return []string{"http://" + addr}, stop, nil
	default:
		return nil, stop, fmt.Errorf("one of -addr, -portfile, -selfhost is required")
	}
}

// scheduleChaos arms the replica kill: chaosAt after now, SIGKILL the
// pid in the pidfile. Returns a function reporting the actual kill
// time (zero until fired).
func scheduleChaos() func() time.Time {
	var mu sync.Mutex
	var killedAt time.Time
	start := time.Now()
	go func() {
		time.Sleep(*chaosAt)
		raw, err := os.ReadFile(*chaosKill)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: read pidfile: %v\n", err)
			return
		}
		pid, err := strconv.Atoi(strings.TrimSpace(string(raw)))
		if err != nil || pid <= 0 {
			fmt.Fprintf(os.Stderr, "chaos: bad pidfile %q\n", raw)
			return
		}
		if err := syscall.Kill(pid, syscall.SIGKILL); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: kill %d: %v\n", pid, err)
			return
		}
		mu.Lock()
		killedAt = time.Now()
		mu.Unlock()
		fmt.Printf("chaos: SIGKILL pid %d at +%v\n", pid, time.Since(start).Round(time.Millisecond))
	}()
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return killedAt
	}
}

// waitRecovered polls the coordinator's /healthz until every replica
// is healthy again (respawn + re-admission complete).
func waitRecovered(client *http.Client, base string, limit time.Duration) bool {
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			var hz struct {
				OK      bool `json:"ok"`
				Healthy int  `json:"healthy"`
				Total   int  `json:"total"`
			}
			err := json.NewDecoder(resp.Body).Decode(&hz)
			resp.Body.Close()
			if err == nil && hz.OK && hz.Healthy == hz.Total {
				return true
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

// runSmoke is verify.sh's probe: healthz, one simulation, one check.
func runSmoke(client *http.Client, base string) error {
	if err := waitHealthy(client, base, *wait); err != nil {
		return err
	}
	r := post(client, base, "/v1/simulate", map[string]any{"protocol": "bitar", "ops": 300})
	if r.err != nil || r.code != http.StatusOK {
		return fmt.Errorf("smoke simulate: code=%d err=%v", r.code, r.err)
	}
	r = post(client, base, "/v1/check", map[string]any{"protocol": "bitar", "depth": 4})
	if r.err != nil || r.code != http.StatusOK {
		return fmt.Errorf("smoke check: code=%d err=%v", r.code, r.err)
	}
	if *smokePprof {
		resp, err := client.Get(base + "/debug/pprof/cmdline")
		if err != nil {
			return fmt.Errorf("smoke pprof: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke pprof: code=%d, want 200", resp.StatusCode)
		}
		fmt.Println("smoke: OK (healthz, simulate, check, pprof)")
		return nil
	}
	fmt.Println("smoke: OK (healthz, simulate, check)")
	return nil
}

func run() error {
	bases, stop, err := resolveBases()
	if err != nil {
		return err
	}
	defer stop()
	client := &http.Client{
		Timeout:   60 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *conc},
	}
	if *smoke {
		return runSmoke(client, bases[0])
	}
	if *profile != "mixed" && *profile != "simheavy" {
		return fmt.Errorf("unknown -profile %q (mixed | simheavy)", *profile)
	}
	for _, base := range bases {
		if err := waitHealthy(client, base, *wait); err != nil {
			return err
		}
	}

	if *warmup > 0 {
		fmt.Printf("warmup: %v of the mix, unmeasured\n", *warmup)
		_, _ = phase(client, bases, *rate, *warmup, *conc, 200_000, false)
	}
	var killedAt func() time.Time
	if *chaosKill != "" {
		killedAt = scheduleChaos()
	}

	// Phase 1: below the admission limit. Zero tolerance for non-2xx —
	// with chaos enabled, for non-2xx-non-429: a mid-run replica kill
	// may legitimately shed load for a beat, but must never corrupt or
	// drop a request.
	fmt.Printf("phase 1: open loop at %.0f req/s for %v against %s\n", *rate, *duration, strings.Join(bases, ","))
	t0 := time.Now()
	results, skipped := phase(client, bases, *rate, *duration, *conc, 0, false)
	elapsed := time.Since(t0)

	var lat stats.Histogram
	cb := &cbench{Targets: len(bases)}
	ok, bad, shed, retried, tagged := 0, 0, 0, 0, 0
	for _, r := range results {
		if r.retried {
			retried++
		}
		switch {
		case r.err == nil && r.code >= 200 && r.code < 300:
			ok++
			lat.Observe(r.dur.Microseconds())
			switch r.xcache {
			case "hit":
				cb.Hits++
				tagged++
			case "coalesced":
				cb.Coalesced++
				tagged++
			case "miss":
				cb.Misses++
				tagged++
			}
		case r.err == nil && r.code == http.StatusTooManyRequests && *chaosKill != "":
			shed++
		default:
			bad++
			fmt.Fprintf(os.Stderr, "below-limit failure: code=%d err=%v\n", r.code, r.err)
		}
	}
	if cb.Hits+cb.Misses > 0 {
		cb.HitRatio = float64(cb.Hits) / float64(cb.Hits+cb.Misses)
	}
	b := bench{
		Updated: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Gate:    *gate, Profile: *profile, RateRPS: *rate, DurationS: elapsed.Seconds(),
		Requests: len(results), OK: ok, Non2xx: bad + shed, ClientSkipped: skipped,
		ThroughputRPS: float64(ok) / elapsed.Seconds(),
		P50MS:         float64(lat.Percentile(50)) / 1000,
		P90MS:         float64(lat.Percentile(90)) / 1000,
		P99MS:         float64(lat.Percentile(99)) / 1000,
		Retried:       retried,
	}
	if tagged > 0 {
		b.Cluster = cb
	}
	fmt.Printf("phase 1: %d requests, %d ok, %d non-2xx, %d client-skipped; %.1f req/s; p50=%.1fms p90=%.1fms p99=%.1fms\n",
		b.Requests, b.OK, b.Non2xx, b.ClientSkipped, b.ThroughputRPS, b.P50MS, b.P90MS, b.P99MS)
	if tagged > 0 {
		fmt.Printf("phase 1: fleet cache: %d hit, %d coalesced, %d miss (hit ratio %.2f); %d retried\n",
			cb.Hits, cb.Coalesced, cb.Misses, cb.HitRatio, retried)
	}
	if bad > 0 {
		return fmt.Errorf("%d non-2xx responses below the admission limit", bad)
	}
	if ok == 0 {
		return fmt.Errorf("no successful requests in phase 1")
	}

	if *chaosKill != "" {
		ka := time.Time{}
		if killedAt != nil {
			ka = killedAt()
		}
		if ka.IsZero() {
			return fmt.Errorf("chaos kill never fired (pidfile %s)", *chaosKill)
		}
		ch := &chaosb{KillAtS: ka.Sub(t0).Seconds(), WindowS: chaosDur.Seconds()}
		for _, r := range results {
			if r.at.Before(ka) || r.at.After(ka.Add(*chaosDur)) {
				continue
			}
			ch.Requests++
			switch {
			case r.err == nil && r.code >= 200 && r.code < 300:
				ch.OK++
			case r.err == nil && r.code == http.StatusTooManyRequests:
				ch.Shed++
			default:
				ch.Other++
			}
		}
		if *chaosWait {
			ch.Recovered = waitRecovered(client, bases[0], *wait)
		}
		b.Chaos = ch
		fmt.Printf("chaos: kill at +%.2fs; window: %d requests, %d ok, %d shed, %d other; recovered=%v\n",
			ch.KillAtS, ch.Requests, ch.OK, ch.Shed, ch.Other, ch.Recovered)
		if ch.Other > 0 {
			return fmt.Errorf("chaos window saw %d responses that were neither 2xx nor 429", ch.Other)
		}
		if ch.Requests == 0 {
			return fmt.Errorf("chaos window covered no requests: lengthen -duration or move -chaos-at earlier")
		}
		if *chaosWait && !ch.Recovered {
			return fmt.Errorf("fleet did not recover to full health within %v of the kill", *wait)
		}
	}

	// Phase 2: deliberate overload — heavy requests at high rate. The
	// only acceptable outcome per request is success or a clean 429.
	if *overload {
		orate := *rate * 16
		fmt.Printf("phase 2: overload at %.0f req/s (unique heavy simulations) for 1.5s\n", orate)
		oresults, _ := phase(client, bases, orate, 1500*time.Millisecond, *conc, 100_000, true)
		ob := &obench{Requests: len(oresults)}
		for _, r := range oresults {
			switch {
			case r.err == nil && r.code >= 200 && r.code < 300:
				ob.OK++
			case r.err == nil && r.code == http.StatusTooManyRequests:
				ob.Shed++
			default:
				ob.Other++
				fmt.Fprintf(os.Stderr, "overload non-429 failure: code=%d err=%v\n", r.code, r.err)
			}
		}
		b.Overload = ob
		fmt.Printf("phase 2: %d requests, %d ok, %d shed (429), %d other\n",
			ob.Requests, ob.OK, ob.Shed, ob.Other)
		if ob.Other > 0 {
			return fmt.Errorf("overload produced %d responses that were neither 2xx nor 429", ob.Other)
		}
		if ob.Shed == 0 {
			if *requireShed {
				return fmt.Errorf("overload shed nothing: the admission gate never rejected — either capacity flags are too generous or backpressure is broken")
			}
			fmt.Println("note: overload phase shed nothing (server kept up); admission gate not exercised")
		}
	}

	if *outFile == "" {
		return nil
	}
	if old, err := os.ReadFile(*outFile); err == nil && !*update {
		var prev bench
		if err := json.Unmarshal(old, &prev); err != nil {
			return fmt.Errorf("baseline %s: %v", *outFile, err)
		}
		floor := prev.ThroughputRPS * *gate
		fmt.Printf("gate: achieved %.1f req/s vs baseline %.1f req/s (floor %.1f at gate %.2f)\n",
			b.ThroughputRPS, prev.ThroughputRPS, floor, *gate)
		if b.ThroughputRPS < floor {
			return fmt.Errorf("throughput regression: %.1f req/s < %.1f req/s floor", b.ThroughputRPS, floor)
		}
		return nil
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFile, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote baseline %s\n", *outFile)
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
