// Command loadgen drives cachesyncd with a concurrent open-loop load:
// requests fire at a fixed rate regardless of completions (the
// arrival process a real service sees), drawn from a mixed
// distribution of simulations, model checks, and sweeps with rotating
// parameters, and the run reports throughput and latency percentiles.
//
//	go run ./cmd/loadgen -selfhost -rate 25 -duration 3s
//	go run ./cmd/loadgen -addr 127.0.0.1:8344 -rate 50 -duration 10s
//	go run ./cmd/loadgen -portfile /tmp/port -smoke
//
// Two phases enforce the serving SLO:
//
//   - below the admission limit (the main phase), every response must
//     be 2xx — a 429 or 5xx here fails the run;
//   - under deliberate overload (the second phase, ~10× the sustainable
//     demand), the only acceptable non-2xx is a clean 429 from the
//     admission gate — a 5xx, a hang, or a connection error fails.
//
// -out writes the results as a committed baseline (BENCH_serve.json);
// with an existing baseline, -gate F fails the run when achieved
// throughput drops below F × the baseline's (mirroring the
// BENCH_mcheck.json regression gate). -update rewrites the baseline.
// -selfhost embeds the daemon in-process on 127.0.0.1:0, so the
// benchmark needs no process management; -smoke is the one-shot
// health probe verify.sh uses against an externally started daemon.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	_ "cachesync/internal/protocol/all"
	"cachesync/internal/serve"
	"cachesync/internal/stats"
)

var (
	addrFlag    = flag.String("addr", "", "daemon address (host:port)")
	portfile    = flag.String("portfile", "", "read the daemon address from this file (polled until it appears)")
	selfhost    = flag.Bool("selfhost", false, "embed the daemon in-process on 127.0.0.1:0")
	shWork      = flag.Int("workers", 0, "selfhost: execution width (0 = GOMAXPROCS)")
	shQueue     = flag.Int("queue", 64, "selfhost: admission queue length")
	profile     = flag.String("profile", "mixed", "main-phase request mix: mixed (simulate/check/sweep rotation) | simheavy (all engine-bound simulations, unique seeds, checker off)")
	rate        = flag.Float64("rate", 25, "open-loop arrival rate, requests/second")
	duration    = flag.Duration("duration", 3*time.Second, "main-phase length")
	conc        = flag.Int("conc", 256, "client-side cap on outstanding requests")
	overload    = flag.Bool("overload", true, "run the overload phase (expect only clean 429s)")
	requireShed = flag.Bool("require-shed", false, "fail if the overload phase sheds nothing (use with -selfhost and pinned -workers/-queue, where capacity is known)")
	smoke       = flag.Bool("smoke", false, "one-shot probe: /healthz, one simulate, one check; then exit")
	smokePprof  = flag.Bool("expect-pprof", false, "with -smoke, also require GET /debug/pprof/cmdline to answer 200 (daemon started with -pprof)")
	wait        = flag.Duration("wait", 15*time.Second, "how long -portfile/-smoke wait for the daemon")
	outFile     = flag.String("out", "", "benchmark baseline file (written if absent, gated if present)")
	gate        = flag.Float64("gate", 0.3, "fail when throughput < gate × baseline throughput")
	update      = flag.Bool("update", false, "rewrite the baseline even if it exists")
)

// bench is the BENCH_serve.json schema.
type bench struct {
	Updated       string  `json:"updated"`
	Go            string  `json:"go"`
	Gate          float64 `json:"gate"`
	Profile       string  `json:"profile,omitempty"`
	RateRPS       float64 `json:"rate_rps"`
	DurationS     float64 `json:"duration_s"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Non2xx        int     `json:"non2xx"`
	ClientSkipped int     `json:"client_skipped"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P90MS         float64 `json:"p90_ms"`
	P99MS         float64 `json:"p99_ms"`
	Overload      *obench `json:"overload,omitempty"`
}

// obench summarizes the overload phase.
type obench struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Shed     int `json:"shed"`  // clean 429s
	Other    int `json:"other"` // anything else: must be zero
}

type result struct {
	code int
	dur  time.Duration
	err  error
}

// protocols rotated through by the mixed distribution.
var mixProtocols = []string{"bitar", "illinois", "goodman", "berkeley"}

// request builds the i-th request of the deterministic mix: 70%
// simulations over 16 rotating seeds, 20% model checks over rotating
// protocols, 10% small sweeps. Rotating parameters defeat the daemon's
// dedup/cache enough that the pool does real work, while the repeats
// exercise the coalescing and cache paths too.
//
// The heavy (overload) mix is all simulations with a unique seed per
// request: every request then needs its own execution slot — the
// single-flight dedup cannot absorb the burst — so the admission gate
// itself is what gets exercised.
func request(i int, heavy bool) (path string, body map[string]any) {
	// The simheavy profile is all simulation, sized so the simulator
	// core — not the result cache, dedup, or coherence checker —
	// dominates each request: unique seeds defeat caching, and the
	// checker is off because it costs a full-machine scan per bus
	// transaction and would drown the engine being measured. This is
	// the profile where the direct-execution engine shows up in
	// serving throughput.
	if *profile == "simheavy" && !heavy {
		return "/v1/simulate", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"procs":    8,
			"ops":      2_000,
			"seed":     1 + i,
			"nocheck":  true,
		}
	}
	if heavy {
		return "/v1/simulate", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"ops":      1_000,
			"seed":     1 + i,
		}
	}
	switch {
	case i%10 < 7:
		return "/v1/simulate", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"ops":      200,
			"seed":     1 + i%16,
		}
	case i%10 < 9:
		return "/v1/check", map[string]any{
			"protocol": mixProtocols[i%len(mixProtocols)],
			"depth":    4,
		}
	default:
		return "/v1/sweep", map[string]any{
			"protocols": []string{mixProtocols[i%len(mixProtocols)]},
			"procs":     []int{1, 2},
			"ops":       100,
			"seed":      1 + i%16,
		}
	}
}

func post(client *http.Client, base, path string, body any) result {
	buf, err := json.Marshal(body)
	if err != nil {
		return result{err: err}
	}
	t0 := time.Now()
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return result{err: err, dur: time.Since(t0)}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return result{code: resp.StatusCode, dur: time.Since(t0)}
}

// phase fires requests open-loop at rps for dur, capping outstanding
// requests at conc (ticks beyond the cap are counted, not sent — a
// client-side saturation signal, not a server verdict). heavy selects
// the overload mix. Request indices start at off so phases draw
// different slices of the rotation.
func phase(client *http.Client, base string, rps float64, dur time.Duration, conc int, off int, heavy bool) ([]result, int) {
	interval := time.Duration(float64(time.Second) / rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(dur)

	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
		skipped int
	)
	slots := make(chan struct{}, conc)
	i := off
	for {
		select {
		case <-deadline:
			wg.Wait()
			return results, skipped
		case <-ticker.C:
			select {
			case slots <- struct{}{}:
			default:
				skipped++
				continue
			}
			path, body := request(i, heavy)
			i++
			wg.Add(1)
			go func() {
				defer wg.Done()
				r := post(client, base, path, body)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
				<-slots
			}()
		}
	}
}

// waitHealthy polls /healthz until it answers 200.
func waitHealthy(client *http.Client, base string, limit time.Duration) error {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon not healthy after %v: %v", limit, err)
			}
			return fmt.Errorf("daemon not healthy after %v", limit)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// resolveBase finds the daemon: -addr, -portfile (polled), or
// -selfhost. The returned stop function tears selfhost down.
func resolveBase() (base string, stop func(), err error) {
	stop = func() {}
	switch {
	case *selfhost:
		s := serve.New(serve.Config{Workers: *shWork, Queue: *shQueue})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", stop, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go func() { _ = hs.Serve(ln) }()
		return "http://" + ln.Addr().String(), func() {
			_ = hs.Close()
			s.Close()
		}, nil
	case *addrFlag != "":
		return "http://" + *addrFlag, stop, nil
	case *portfile != "":
		deadline := time.Now().Add(*wait)
		for {
			raw, err := os.ReadFile(*portfile)
			if err == nil && len(bytes.TrimSpace(raw)) > 0 {
				return "http://" + string(bytes.TrimSpace(raw)), stop, nil
			}
			if time.Now().After(deadline) {
				return "", stop, fmt.Errorf("portfile %s did not appear within %v", *portfile, *wait)
			}
			time.Sleep(50 * time.Millisecond)
		}
	default:
		return "", stop, fmt.Errorf("one of -addr, -portfile, -selfhost is required")
	}
}

// runSmoke is verify.sh's probe: healthz, one simulation, one check.
func runSmoke(client *http.Client, base string) error {
	if err := waitHealthy(client, base, *wait); err != nil {
		return err
	}
	r := post(client, base, "/v1/simulate", map[string]any{"protocol": "bitar", "ops": 300})
	if r.err != nil || r.code != http.StatusOK {
		return fmt.Errorf("smoke simulate: code=%d err=%v", r.code, r.err)
	}
	r = post(client, base, "/v1/check", map[string]any{"protocol": "bitar", "depth": 4})
	if r.err != nil || r.code != http.StatusOK {
		return fmt.Errorf("smoke check: code=%d err=%v", r.code, r.err)
	}
	if *smokePprof {
		resp, err := client.Get(base + "/debug/pprof/cmdline")
		if err != nil {
			return fmt.Errorf("smoke pprof: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke pprof: code=%d, want 200", resp.StatusCode)
		}
		fmt.Println("smoke: OK (healthz, simulate, check, pprof)")
		return nil
	}
	fmt.Println("smoke: OK (healthz, simulate, check)")
	return nil
}

func run() error {
	base, stop, err := resolveBase()
	if err != nil {
		return err
	}
	defer stop()
	client := &http.Client{
		Timeout:   60 * time.Second,
		Transport: &http.Transport{MaxIdleConnsPerHost: *conc},
	}
	if *smoke {
		return runSmoke(client, base)
	}
	if *profile != "mixed" && *profile != "simheavy" {
		return fmt.Errorf("unknown -profile %q (mixed | simheavy)", *profile)
	}
	if err := waitHealthy(client, base, *wait); err != nil {
		return err
	}

	// Phase 1: below the admission limit. Zero tolerance for non-2xx.
	fmt.Printf("phase 1: open loop at %.0f req/s for %v against %s\n", *rate, *duration, base)
	t0 := time.Now()
	results, skipped := phase(client, base, *rate, *duration, *conc, 0, false)
	elapsed := time.Since(t0)

	var lat stats.Histogram
	ok, bad := 0, 0
	for _, r := range results {
		if r.err == nil && r.code >= 200 && r.code < 300 {
			ok++
			lat.Observe(r.dur.Microseconds())
		} else {
			bad++
			fmt.Fprintf(os.Stderr, "below-limit failure: code=%d err=%v\n", r.code, r.err)
		}
	}
	b := bench{
		Updated: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Gate:    *gate, Profile: *profile, RateRPS: *rate, DurationS: elapsed.Seconds(),
		Requests: len(results), OK: ok, Non2xx: bad, ClientSkipped: skipped,
		ThroughputRPS: float64(ok) / elapsed.Seconds(),
		P50MS:         float64(lat.Percentile(50)) / 1000,
		P90MS:         float64(lat.Percentile(90)) / 1000,
		P99MS:         float64(lat.Percentile(99)) / 1000,
	}
	fmt.Printf("phase 1: %d requests, %d ok, %d non-2xx, %d client-skipped; %.1f req/s; p50=%.1fms p90=%.1fms p99=%.1fms\n",
		b.Requests, b.OK, b.Non2xx, b.ClientSkipped, b.ThroughputRPS, b.P50MS, b.P90MS, b.P99MS)
	if bad > 0 {
		return fmt.Errorf("%d non-2xx responses below the admission limit", bad)
	}
	if ok == 0 {
		return fmt.Errorf("no successful requests in phase 1")
	}

	// Phase 2: deliberate overload — heavy requests at high rate. The
	// only acceptable outcome per request is success or a clean 429.
	if *overload {
		orate := *rate * 16
		fmt.Printf("phase 2: overload at %.0f req/s (unique heavy simulations) for 1.5s\n", orate)
		oresults, _ := phase(client, base, orate, 1500*time.Millisecond, *conc, 100_000, true)
		ob := &obench{Requests: len(oresults)}
		for _, r := range oresults {
			switch {
			case r.err == nil && r.code >= 200 && r.code < 300:
				ob.OK++
			case r.err == nil && r.code == http.StatusTooManyRequests:
				ob.Shed++
			default:
				ob.Other++
				fmt.Fprintf(os.Stderr, "overload non-429 failure: code=%d err=%v\n", r.code, r.err)
			}
		}
		b.Overload = ob
		fmt.Printf("phase 2: %d requests, %d ok, %d shed (429), %d other\n",
			ob.Requests, ob.OK, ob.Shed, ob.Other)
		if ob.Other > 0 {
			return fmt.Errorf("overload produced %d responses that were neither 2xx nor 429", ob.Other)
		}
		if ob.Shed == 0 {
			if *requireShed {
				return fmt.Errorf("overload shed nothing: the admission gate never rejected — either capacity flags are too generous or backpressure is broken")
			}
			fmt.Println("note: overload phase shed nothing (server kept up); admission gate not exercised")
		}
	}

	if *outFile == "" {
		return nil
	}
	if old, err := os.ReadFile(*outFile); err == nil && !*update {
		var prev bench
		if err := json.Unmarshal(old, &prev); err != nil {
			return fmt.Errorf("baseline %s: %v", *outFile, err)
		}
		floor := prev.ThroughputRPS * *gate
		fmt.Printf("gate: achieved %.1f req/s vs baseline %.1f req/s (floor %.1f at gate %.2f)\n",
			b.ThroughputRPS, prev.ThroughputRPS, floor, *gate)
		if b.ThroughputRPS < floor {
			return fmt.Errorf("throughput regression: %.1f req/s < %.1f req/s floor", b.ThroughputRPS, floor)
		}
		return nil
	}
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFile, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote baseline %s\n", *outFile)
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}
