// Command tracegen emits a synthetic reference trace in the text
// format of internal/trace, for replay with
// `cachesim -workload trace`.
//
//	go run ./cmd/tracegen -procs 4 -ops 200 -pattern mixed > ref.trace
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"cachesync/internal/addr"
	"cachesync/internal/trace"
)

var (
	procs   = flag.Int("procs", 4, "processor count")
	ops     = flag.Int("ops", 200, "events per processor")
	pattern = flag.String("pattern", "mixed", "pattern: mixed | lock | private")
	seed    = flag.Int64("seed", 1, "generator seed")
	blockW  = flag.Int("block", 4, "block size in words (address layout)")
)

func main() {
	flag.Parse()
	g := addr.MustGeometry(*blockW, *blockW)
	rng := rand.New(rand.NewSource(*seed))
	t := &trace.Trace{}
	add := func(e trace.Event) { t.Events = append(t.Events, e) }

	for p := 0; p < *procs; p++ {
		switch *pattern {
		case "mixed":
			for k := 0; k < *ops; k++ {
				var a addr.Addr
				if rng.Float64() < 0.3 {
					a = g.Base(addr.Block(64 + rng.Intn(8)))
				} else {
					a = g.Base(addr.Block(64 + 4096 + p*4096 + rng.Intn(16)))
				}
				a += addr.Addr(rng.Intn(g.BlockWords))
				if rng.Float64() < 0.35 {
					add(trace.Event{Proc: p, Kind: trace.Write, Addr: a, Value: uint64(k)})
				} else {
					add(trace.Event{Proc: p, Kind: trace.Read, Addr: a})
				}
			}
		case "lock":
			lock := g.Base(0)
			for k := 0; k < *ops/4; k++ {
				add(trace.Event{Proc: p, Kind: trace.Lock, Addr: lock})
				add(trace.Event{Proc: p, Kind: trace.Write, Addr: lock + 1, Value: uint64(k)})
				add(trace.Event{Proc: p, Kind: trace.Unlock, Addr: lock, Value: uint64(k)})
				add(trace.Event{Proc: p, Kind: trace.Compute, Cycles: int64(rng.Intn(30))})
			}
		case "private":
			for k := 0; k < *ops; k++ {
				a := g.Base(addr.Block(64+4096+p*4096+k%32)) + addr.Addr(rng.Intn(g.BlockWords))
				add(trace.Event{Proc: p, Kind: trace.Read, Addr: a})
				add(trace.Event{Proc: p, Kind: trace.Write, Addr: a, Value: uint64(k)})
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
			os.Exit(2)
		}
	}
	fmt.Printf("# tracegen pattern=%s procs=%d ops=%d seed=%d\n", *pattern, *procs, *ops, *seed)
	if err := t.Encode(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
