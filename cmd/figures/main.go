// Command figures regenerates the paper's Figures 1-10: the protocol
// interaction scenarios of Section E run on the simulator, each
// checked against the behavior the paper depicts, plus the
// state-transition table of Figure 10 cross-checked arc by arc.
// Figures regenerate through the parallel experiment engine
// (internal/runner); output is merged in figure order, so it is
// byte-identical for any -j.
//
//	go run ./cmd/figures        # -j GOMAXPROCS
//	go run ./cmd/figures -j 1   # sequential
package main

import (
	"flag"
	"fmt"
	"os"

	"cachesync/internal/report"
	"cachesync/internal/runner"
)

var (
	workers = flag.Int("j", 0, "worker pool size (default GOMAXPROCS)")
	noCache = flag.Bool("nocache", false, "disable the .runnercache/ result cache")
)

func main() {
	flag.Parse()
	opts := runner.Options{Workers: *workers}
	if !*noCache {
		c, err := runner.OpenCache("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: result cache disabled: %v\n", err)
		} else {
			opts.Cache = c
		}
	}
	res, err := runner.Run(report.FigureJobs(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(res.Output())
	if !res.AllPass() {
		os.Exit(1)
	}
}
