// Command figures regenerates the paper's Figures 1-10: the protocol
// interaction scenarios of Section E run on the simulator, each
// checked against the behavior the paper depicts, plus the
// state-transition table of Figure 10 cross-checked arc by arc.
//
//	go run ./cmd/figures
package main

import (
	"fmt"
	"os"

	"cachesync/internal/report"
)

func main() {
	fail := false
	for _, f := range report.AllFigures() {
		fmt.Println(f.Render())
		if !f.Pass {
			fail = true
		}
	}
	for _, fig := range []string{"4", "9"} {
		seq, err := report.FigureSequence(fig)
		if err != nil {
			fmt.Println(err)
			fail = true
			continue
		}
		fmt.Println(seq)
	}
	fmt.Println(report.Figure10Processor().Render())
	fmt.Println(report.Figure10Bus().Render())
	if diffs := report.VerifyFigure10(); len(diffs) > 0 {
		fail = true
		fmt.Println("Figure 10 mismatches against the paper:")
		for _, d := range diffs {
			fmt.Println("  " + d)
		}
	} else {
		fmt.Println("Figure 10: every transcribed arc of the paper's diagram matches the implementation")
	}
	if fail {
		os.Exit(1)
	}
}
