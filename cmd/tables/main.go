// Command tables regenerates the paper's Table 1 (the protocol
// evolution matrix, cross-checked against the published values) and
// Table 2 (the innovation summary), and runs the quantitative
// experiment sweeps E1-E21 that ground the paper's qualitative
// claims. All regeneration goes through the parallel experiment
// engine (internal/runner): jobs fan out over a worker pool, results
// merge in job order (parallel output is byte-identical to
// sequential), and an on-disk cache under .runnercache/ skips jobs
// whose code and configuration are unchanged.
//
//	go run ./cmd/tables                     # everything, -j GOMAXPROCS
//	go run ./cmd/tables -j 8               # explicit pool size
//	go run ./cmd/tables -only E3           # one experiment
//	go run ./cmd/tables -json ARTIFACTS.json   # full suite -> manifest
//	go run ./cmd/tables -gate ARTIFACTS.json   # diff against baseline
//	go run ./cmd/tables -sweep procs=2..8      # scaling sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachesync/internal/report"
	"cachesync/internal/runner"
)

var (
	only    = flag.String("only", "", "run only the named experiment (E1..E21), 'ablations', or 'tables'")
	csv     = flag.Bool("csv", false, "emit experiment tables as CSV")
	workers = flag.Int("j", 0, "worker pool size (default GOMAXPROCS)")
	noCache = flag.Bool("nocache", false, "disable the .runnercache/ result cache")
	jsonOut = flag.String("json", "", "run the full suite (tables, experiments, ablations, figures) and write the JSON artifact manifest to this file")
	gate    = flag.String("gate", "", "run the full suite and diff it against a committed artifact manifest (e.g. ARTIFACTS.json); exit nonzero on drift")
	sweep   = flag.String("sweep", "", "fan the mixed workload across processor counts and all protocols, e.g. -sweep procs=2..8")

	writeGoldens = flag.Bool("write-transition-goldens", false, "regenerate the compiled-transition-table goldens and exit")
	checkGoldens = flag.Bool("check-transition-goldens", false, "verify the committed transition-table goldens match a fresh compilation; exit nonzero on drift")
	goldenDir    = flag.String("transition-golden-dir", "internal/protocol/goldens", "directory holding the committed transition-table goldens")
)

// runJobs executes a job list on the pool, with the result cache
// unless -nocache.
func runJobs(jobs []runner.Job) *runner.Result {
	opts := runner.Options{Workers: *workers}
	if !*noCache {
		c, err := runner.OpenCache("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: result cache disabled: %v\n", err)
		} else {
			opts.Cache = c
		}
	}
	res, err := runner.Run(jobs, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

func main() {
	flag.Parse()

	if *writeGoldens || *checkGoldens {
		var err error
		if *writeGoldens {
			err = writeTransitionGoldens(*goldenDir)
		} else {
			err = checkTransitionGoldens(*goldenDir)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *sweep != "" {
		procs, err := report.ParseSweepSpec(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		res := runJobs(report.SweepJobs(report.SweepProtocols(), procs))
		fmt.Println(report.SweepTable(res.Output()).Render())
		fmt.Printf("sweep: %d cells, %d cached, %d workers, %.0f ms\n",
			len(res.Jobs), res.CachedCount(), res.Workers, float64(res.Wall.Microseconds())/1e3)
		return
	}

	if *jsonOut != "" || *gate != "" {
		res := runJobs(report.AllJobs(false))
		if *jsonOut != "" {
			if err := runner.WriteArtifacts(*jsonOut, res.Manifest()); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s: %d artifacts (%d cached), %d workers, %.0f ms\n",
				*jsonOut, len(res.Jobs), res.CachedCount(), res.Workers,
				float64(res.Wall.Microseconds())/1e3)
		}
		if *gate != "" {
			baseline, err := runner.ReadArtifacts(*gate)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if bad := runner.Gate(os.Stdout, baseline, res); bad > 0 {
				fmt.Printf("gate: %d artifact(s) diverged from %s\n", bad, *gate)
				os.Exit(1)
			}
			fmt.Printf("gate: all %d artifacts match %s\n", len(res.Jobs), *gate)
		}
		if !res.AllPass() && *gate == "" {
			os.Exit(1)
		}
		return
	}

	// Print mode: the same selections the sequential driver offered.
	var jobs []runner.Job
	switch {
	case strings.EqualFold(*only, "ablations"):
		jobs = report.AblationJobs(*csv)
	case strings.EqualFold(*only, "tables"):
		jobs = report.TableJobs()
	case *only != "":
		id := strings.ToUpper(*only)
		if _, ok := report.Experiments[id]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have E1..E21)\n", *only)
			os.Exit(2)
		}
		for _, j := range report.ExperimentJobs(*csv) {
			if j.Name == id {
				jobs = []runner.Job{j}
			}
		}
	default:
		jobs = report.TableJobs()
		jobs = append(jobs, report.ExperimentJobs(*csv)...)
		jobs = append(jobs, report.AblationJobs(*csv)...)
	}
	res := runJobs(jobs)
	fmt.Print(res.Output())
	if !res.AllPass() {
		os.Exit(1)
	}
}
