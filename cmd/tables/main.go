// Command tables regenerates the paper's Table 1 (the protocol
// evolution matrix, cross-checked against the published values) and
// Table 2 (the innovation summary), and runs the quantitative
// experiment sweeps E1-E14 that ground the paper's qualitative
// claims.
//
//	go run ./cmd/tables            # everything
//	go run ./cmd/tables -only E3   # one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cachesync/internal/report"
	"cachesync/internal/stats"
)

var (
	only = flag.String("only", "", "run only the named experiment (E1..E17), 'ablations', or 'tables'")
	csv  = flag.Bool("csv", false, "emit experiment tables as CSV")
)

func emit(t *stats.Table) {
	if *csv {
		fmt.Println(t.Title)
		fmt.Print(t.CSV())
		fmt.Println()
		return
	}
	fmt.Println(t.Render())
}

func main() {
	flag.Parse()

	experiments := map[string]func() *stats.Table{
		"E1": report.E1LockCost, "E2": report.E2BusyWait,
		"E3": report.E3SharedData, "E4": report.E4TransferUnits,
		"E5": report.E5InvalidateSignal, "E6": report.E6ReadForWrite,
		"E7": report.E7SourcePolicy, "E8": report.E8WriteNoFetch,
		"E9": report.E9Protocols, "E10": report.E10RudolphSegall,
		"E11": report.E11Directory, "E12": report.E12RMWMethods,
		"E13": report.E13IO, "E14": report.E14LockPurge,
		"E15": report.E15Broadcast, "E16": report.E16WorkWhileWaiting,
		"E17": report.E17SleepWait, "E18": report.E18DualBus,
		"E19": report.E19Aquarius,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}

	if strings.EqualFold(*only, "ablations") {
		for _, tb := range report.Ablations() {
			emit(tb)
		}
		return
	}
	if *only != "" && !strings.EqualFold(*only, "tables") {
		f, ok := experiments[strings.ToUpper(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (have E1..E17)\n", *only)
			os.Exit(2)
		}
		emit(f())
		return
	}

	fmt.Println(report.Table1().Render())
	if diffs := report.VerifyTable1(); len(diffs) > 0 {
		fmt.Println("Table 1 mismatches against the paper:")
		for _, d := range diffs {
			fmt.Println("  " + d)
		}
		os.Exit(1)
	}
	fmt.Println("Table 1 matches the matrix transcribed from the paper.")
	fmt.Println()
	fmt.Println(report.Table2())

	if strings.EqualFold(*only, "tables") {
		return
	}
	for _, id := range order {
		emit(experiments[id]())
	}
	for _, tb := range report.Ablations() {
		emit(tb)
	}
}
