package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

// Transition-table golden maintenance. The compiled protocol tables
// (internal/protocol/table.go) are committed as one text file per
// protocol under internal/protocol/goldens/; -write-transition-goldens
// regenerates them and -check-transition-goldens verifies the
// committed files match a fresh compilation — the freshness gate
// verify.sh runs, so a protocol edit cannot land without its
// regenerated tables.

// writeTransitionGoldens regenerates every golden file and reports
// how many changed.
func writeTransitionGoldens(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	texts := protocol.GoldenTexts()
	names := make([]string, 0, len(texts))
	for name := range texts {
		names = append(names, name)
	}
	sort.Strings(names)
	changed := 0
	for _, name := range names {
		path := filepath.Join(dir, name+".txt")
		want := []byte(texts[name])
		if have, err := os.ReadFile(path); err == nil && string(have) == string(want) {
			continue
		}
		if err := os.WriteFile(path, want, 0o644); err != nil {
			return err
		}
		changed++
	}
	fmt.Printf("transition goldens: %d protocol(s), %d file(s) rewritten in %s\n", len(names), changed, dir)
	return nil
}

// checkTransitionGoldens diffs the committed goldens against a fresh
// compilation of every registered protocol. Missing files, stale
// contents, and stray files for unregistered protocols are all drift.
func checkTransitionGoldens(dir string) error {
	texts := protocol.GoldenTexts()
	var drift []string
	for name, want := range texts {
		path := filepath.Join(dir, name+".txt")
		have, err := os.ReadFile(path)
		switch {
		case err != nil:
			drift = append(drift, fmt.Sprintf("%s: missing golden (%v)", name, err))
		case string(have) != want:
			drift = append(drift, fmt.Sprintf("%s: committed golden is stale", name))
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".txt")
		if _, ok := texts[name]; !ok {
			drift = append(drift, fmt.Sprintf("%s: stray golden for an unregistered protocol", e.Name()))
		}
	}
	if len(drift) > 0 {
		sort.Strings(drift)
		for _, d := range drift {
			fmt.Fprintln(os.Stderr, "transition goldens: "+d)
		}
		return fmt.Errorf("%d golden(s) out of date; run: go generate ./internal/protocol", len(drift))
	}
	fmt.Printf("transition goldens: all %d protocols match %s\n", len(texts), dir)
	return nil
}
