// Command mcheck runs the bounded model checker: it enumerates every
// interleaving of processor operations on a tiny configuration and
// verifies the DESIGN §6 coherence invariants at each reachable state,
// for one protocol or all of them.
//
//	go run ./cmd/mcheck -protocol all -depth 5
//	go run ./cmd/mcheck -protocol bitar -procs 3 -blocks 2 -depth 6
//	go run ./cmd/mcheck -protocol bitar -arcs            # regenerate Figure 10 arcs
//	go run ./cmd/mcheck -protocol goodman -mutate drop-invalidate
//
// Exit status: 0 when every run verifies clean, 1 when a violation is
// found (the minimized counterexample is printed and replayed), 2 on
// usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
)

var (
	protoName = flag.String("protocol", "all", "protocol name, or \"all\"")
	list      = flag.Bool("list", false, "list protocols and mutants, then exit")
	procs     = flag.Int("procs", 2, "processors (1-8)")
	blocks    = flag.Int("blocks", 1, "blocks (1-4)")
	words     = flag.Int("words", 2, "words per block")
	depth     = flag.Int("depth", 5, "maximum interleaving length")
	workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
	maxStates = flag.Int("maxstates", 1<<21, "state-count cap")
	mutate    = flag.String("mutate", "", "inject a protocol fault (see -list); expects a violation")
	arcs      = flag.Bool("arcs", false, "record state-transition arcs and, for bitar, cross-check Figure 10")
	noSpeed   = flag.Bool("nospeedup", false, "skip the workers=1 rerun that measures parallel speedup")
	jsonOut   = flag.Bool("json", false, "emit one JSON summary per run instead of text")
	symmetry  = flag.Bool("symmetry", true, "explore modulo processor permutations (identical verdicts, up to procs! fewer states)")
	por       = flag.Bool("por", false, "partial-order reduction: explore each block's subsystem separately (identical verdicts and counterexamples, far fewer states at blocks>1)")
	memBudget = flag.Int64("mem-budget", 0, "visited-set RAM budget in bytes (0 = unbounded): over-budget shards seal to compressed sorted runs on disk")
	ckptDir   = flag.String("checkpoint", "", "directory for level-boundary checkpoints; a killed run restarts from the last completed level with -resume (single protocol only)")
	resume    = flag.Bool("resume", false, "with -checkpoint: resume the directory's checkpoint if one exists, start fresh otherwise")
	progress  = flag.Bool("progress", false, "report per-level progress on stderr: states/s plus visited-set bytes in RAM vs spilled runs")
	outFile   = flag.String("out", "", "also write the JSON summaries to this file (atomic rename; timing fields zeroed so reruns compare byte-for-byte)")

	benchJSON   = flag.String("bench-json", "", "run the fixed perf suite and gate against this baseline file (created when absent)")
	benchGate   = flag.Float64("bench-gate", 0.7, "with -bench-json: fail when states/s falls below this fraction of the baseline")
	benchUpdate = flag.Bool("bench-update", false, "with -bench-json: rewrite the baseline with this run's numbers")
)

// summary is the JSON shape of one checker run.
type summary struct {
	*mcheck.Result
	Mutant     string  `json:"mutant,omitempty"`
	Speedup    float64 `json:"speedup,omitempty"`
	ArcsOK     *bool   `json:"figure10_ok,omitempty"`
	Confirmed  bool    `json:"sim_confirmed,omitempty"`
	Minimality string  `json:"minimality,omitempty"`
}

func main() {
	flag.Parse()
	if *list {
		fmt.Println("protocols:")
		for _, n := range protocol.Names() {
			fmt.Printf("  %s\n", n)
		}
		fmt.Println("mutants (-mutate):")
		for _, n := range mcheck.MutantNames() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if *benchJSON != "" {
		os.Exit(runBench(*benchJSON))
	}

	names := protocol.Names()
	if *protoName != "all" {
		if _, err := protocol.New(*protoName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		names = []string{*protoName}
	}
	// One checkpoint directory holds one run's state; a multi-protocol
	// sweep would clobber it at the second protocol.
	if *ckptDir != "" && len(names) != 1 {
		fmt.Fprintln(os.Stderr, "mcheck: -checkpoint requires a single -protocol")
		os.Exit(2)
	}

	// Ctrl-C (or SIGTERM) cancels the exploration promptly mid-level
	// instead of letting a deep run finish its frontier first.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	violated := false
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	var all []*summary
	for _, name := range names {
		s, err := runOne(ctx, name)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "mcheck: interrupted")
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if s.Counterexample != nil {
			violated = true
		}
		all = append(all, s)
		if *jsonOut {
			if err := enc.Encode(s); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	if *outFile != "" {
		if err := writeSummaries(*outFile, all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// A violation is the expected outcome of a mutant run; without
	// -mutate it means the protocol itself is broken.
	if violated {
		os.Exit(1)
	}
}

func runOne(ctx context.Context, name string) (*summary, error) {
	p := protocol.MustNew(name)
	if *mutate != "" {
		mp, err := mcheck.Mutate(p, *mutate)
		if err != nil {
			return nil, err
		}
		p = mp
	}
	opts := mcheck.Options{
		Protocol: p, Procs: *procs, Blocks: *blocks, Words: *words,
		Depth: *depth, Workers: *workers, MaxStates: *maxStates,
		RecordArcs: *arcs, Symmetry: *symmetry, POR: *por, Context: ctx,
		MemBudget: *memBudget, CheckpointDir: *ckptDir, Resume: *resume,
	}
	if *progress {
		opts.Progress = func(pi mcheck.ProgressInfo) {
			fmt.Fprintf(os.Stderr, "progress: depth %-3d %10d states %12d transitions  %8.0f states/s  %s RAM",
				pi.Depth, pi.States, pi.Transitions, pi.StatesPerSec, fmtBytes(pi.RAMBytes))
			if pi.SpilledBytes > 0 {
				fmt.Fprintf(os.Stderr, " + %s spilled in %d runs", fmtBytes(pi.SpilledBytes), pi.SpillRuns)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	res, err := mcheck.Run(opts)
	if err != nil {
		return nil, err
	}
	s := &summary{Result: res, Mutant: *mutate}

	if !*jsonOut {
		status := "COHERENT"
		switch {
		case res.Counterexample != nil:
			status = "VIOLATION"
		case res.Truncated:
			status = "TRUNCATED"
		}
		mode := ""
		if res.Symmetry {
			mode = ", sym"
		}
		if res.POR {
			mode += ", por"
		}
		fmt.Printf("%-28s %-10s states=%-8d transitions=%-9d depth=%d/%d  %.0f states/s (%d workers%s, %v)\n",
			p.Name(), status, res.States, res.Transitions, res.DepthReached, res.Depth,
			res.StatesPerSec, res.Workers, mode, res.Elapsed.Round(time.Millisecond))
	}

	if res.Counterexample != nil {
		handleViolation(opts, s)
	} else if !*noSpeed && *workers > 1 {
		base, err := mcheck.Run(mcheck.Options{
			Protocol: p, Procs: *procs, Blocks: *blocks, Words: *words,
			Depth: *depth, Workers: 1, MaxStates: *maxStates, Symmetry: *symmetry,
			POR: *por, Context: ctx, MemBudget: *memBudget,
		})
		if err != nil {
			return nil, err
		}
		if base.StatesPerSec > 0 {
			s.Speedup = res.StatesPerSec / base.StatesPerSec
			if !*jsonOut {
				fmt.Printf("%-28s speedup %.2fx vs 1 worker (%.0f states/s)\n", "", s.Speedup, base.StatesPerSec)
			}
		}
	}

	if *arcs && res.Counterexample == nil {
		renderArcs(p, s)
	}
	return s, nil
}

// handleViolation prints the minimized counterexample, checks
// minimality (depth-1 must be clean), and replays the trace through
// the discrete-event engine when the trace is sim-representable.
func handleViolation(opts mcheck.Options, s *summary) {
	res := s.Result
	if !*jsonOut {
		fmt.Println()
		fmt.Print(mcheck.RenderCounterexample(opts, res.Counterexample))
	}

	short := opts
	short.Depth = len(res.Counterexample.Trace) - 1
	short.RecordArcs = false
	short.CheckpointDir = ""
	short.Resume = false
	short.Progress = nil
	if short.Depth >= 1 {
		if r2, err := mcheck.Run(short); err == nil && r2.Counterexample == nil && !r2.Truncated {
			s.Minimality = fmt.Sprintf("minimal: depth %d is clean (%d states)", short.Depth, r2.States)
		}
	} else {
		s.Minimality = "minimal: single-step counterexample"
	}
	if !*jsonOut && s.Minimality != "" {
		fmt.Printf("\n%s\n", s.Minimality)
	}

	replay, err := mcheck.SimReplay(opts, res.Counterexample)
	if err == nil {
		s.Confirmed = true
		if !*jsonOut {
			fmt.Println()
			fmt.Print(replay)
		}
	} else if !*jsonOut {
		fmt.Printf("\nsim replay skipped: %v\n", err)
	}
}

// renderArcs prints the reachability-derived transition arcs and, for
// the paper's own protocol, cross-checks them against the expected
// Figure 10 table.
func renderArcs(p protocol.Protocol, s *summary) {
	if !*jsonOut {
		fmt.Println()
		fmt.Print(mcheck.RenderArcs(p, s.Arcs))
	}
	if p.Name() != "bitar" {
		return
	}
	mismatches, unreached := mcheck.CrossCheckFigure10(s.Arcs)
	ok := len(mismatches) == 0 && len(unreached) == 0
	s.ArcsOK = &ok
	if *jsonOut {
		return
	}
	if ok {
		fmt.Println("figure 10 cross-check: all expected arcs reached with matching outcomes")
		return
	}
	for _, m := range mismatches {
		fmt.Printf("figure 10 mismatch: %s\n", m)
	}
	for _, u := range unreached {
		fmt.Printf("figure 10 unreached: %s\n", u)
	}
}

// writeSummaries writes the run summaries as a JSON array with timing
// fields zeroed, via tmp+rename: a kill-and-resume pair of invocations
// with the same -out produces byte-identical files iff exploration was
// byte-identical, which verify.sh asserts with cmp.
func writeSummaries(path string, all []*summary) error {
	norm := make([]summary, len(all))
	for i, s := range all {
		norm[i] = *s
		r := *s.Result
		r.Elapsed = 0
		r.StatesPerSec = 0
		norm[i].Result = &r
		norm[i].Speedup = 0
	}
	data, err := json.MarshalIndent(norm, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
