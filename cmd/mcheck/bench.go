package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
)

// The benchmark-regression gate: `mcheck -bench-json FILE` runs a
// fixed suite of exploration configurations and compares throughput
// against the committed baseline. The gate protects the checker core's
// performance the same way tests protect its verdicts — a change that
// silently halves states/s fails CI just like a change that breaks an
// invariant. The suite is deliberately small (a few seconds total) so
// it can run on every change.
//
// Semantics:
//   - FILE absent            → run the suite, write FILE, exit 0.
//   - FILE present           → run the suite; fail (exit 1) if any
//     entry's states/s falls below -bench-gate × baseline, or if the
//     explored state/transition counts differ at all (a count change
//     is an exploration bug, not a perf regression).
//   - -bench-update          → also rewrite FILE with this run's numbers.
//
// Throughput numbers are machine-dependent; refresh the baseline with
// -bench-update when moving hardware.

// benchConfig is one fixed exploration the suite measures.
type benchConfig struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Procs    int    `json:"procs"`
	Blocks   int    `json:"blocks"`
	Words    int    `json:"words"`
	Depth    int    `json:"depth"`
	Symmetry bool   `json:"symmetry"`
	POR      bool   `json:"por,omitempty"`
	// MemBudget bounds the visited set's RAM; the overflow seals to
	// compressed runs on disk. SpillOf names the in-memory sibling
	// entry this spill-mode entry is gated against within the same
	// run: identical counts, and states/s no worse than -bench-gate ×
	// the sibling's. The in-run comparison is hardware-independent, so
	// the spill overhead bound holds even on a fresh baseline.
	MemBudget int64  `json:"mem_budget,omitempty"`
	SpillOf   string `json:"spill_of,omitempty"`
}

// benchEntry is one measured result.
type benchEntry struct {
	benchConfig
	States       int64   `json:"states"`
	Transitions  int64   `json:"transitions"`
	StatesPerSec float64 `json:"states_per_sec"`
	// Spill-mode evidence: how much of the visited set actually left
	// RAM. Zero SpilledStates on a MemBudget entry fails the gate —
	// a budget nothing overflows measures nothing.
	SpilledStates int64 `json:"spilled_states,omitempty"`
	SpilledBytes  int64 `json:"spilled_bytes,omitempty"`
	SpillRuns     int64 `json:"spill_runs,omitempty"`
}

// benchFile is the JSON baseline artifact.
type benchFile struct {
	Updated string       `json:"updated"`
	Go      string       `json:"go"`
	Gate    float64      `json:"gate"`
	Entries []benchEntry `json:"entries"`
}

// benchSuite is the fixed configuration set. Names are stable
// identifiers: the gate matches entries by name, so renaming one
// orphans its baseline.
// Each configuration is sized to run for at least ~100ms so the
// states/s measurement is stable against scheduler jitter; sub-5ms
// runs were seen to vary ±25% run to run.
var benchSuite = []benchConfig{
	{Name: "bitar-p3-d7", Protocol: "bitar", Procs: 3, Blocks: 1, Words: 2, Depth: 7},
	{Name: "bitar-p3-d7-sym", Protocol: "bitar", Procs: 3, Blocks: 1, Words: 2, Depth: 7, Symmetry: true},
	{Name: "illinois-p3-b2-d7", Protocol: "illinois", Procs: 3, Blocks: 2, Words: 2, Depth: 7},
	{Name: "dragon-p3-b2-d7-sym", Protocol: "dragon", Procs: 3, Blocks: 2, Words: 2, Depth: 7, Symmetry: true},
	// The reduction pair: same exploration with and without POR. The
	// count-match clause of the gate pins both the unreduced state
	// count (POR must not change what -por=false explores) and the
	// reduced one (the measured reduction factor is baseline data for
	// EXPERIMENTS.md and must not silently erode).
	{Name: "bitar-p3-b2-d6", Protocol: "bitar", Procs: 3, Blocks: 2, Words: 2, Depth: 6, Symmetry: true},
	{Name: "bitar-p3-b2-d6-por", Protocol: "bitar", Procs: 3, Blocks: 2, Words: 2, Depth: 6, Symmetry: true, POR: true},
	// The spill pair: the same 132k-state exploration under a 6 MiB
	// visited-set budget — small enough that every closed level seals
	// (the final frontier always stays live, so ~22% of states end up
	// on disk here) — gated in-run against its sibling above.
	{Name: "bitar-p3-b2-d6-spill", Protocol: "bitar", Procs: 3, Blocks: 2, Words: 2, Depth: 6, Symmetry: true,
		MemBudget: 6 << 20, SpillOf: "bitar-p3-b2-d6"},
}

func runBench(path string) int {
	cur, err := measureSuite()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	base, err := readBaseline(path)
	if os.IsNotExist(err) {
		if werr := writeBaseline(path, cur); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 2
		}
		fmt.Printf("bench: baseline %s written (%d entries)\n", path, len(cur))
		return 0
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	baseline := map[string]benchEntry{}
	for _, e := range base.Entries {
		baseline[e.Name] = e
	}
	failed := false
	for _, e := range cur {
		b, ok := baseline[e.Name]
		if !ok {
			fmt.Printf("bench: %-20s NEW       %8.0f states/s (no baseline)\n", e.Name, e.StatesPerSec)
			continue
		}
		switch {
		case e.States != b.States || e.Transitions != b.Transitions:
			failed = true
			fmt.Printf("bench: %-20s FAIL      exploration changed: states %d→%d transitions %d→%d\n",
				e.Name, b.States, e.States, b.Transitions, e.Transitions)
		case e.StatesPerSec < *benchGate*b.StatesPerSec:
			failed = true
			fmt.Printf("bench: %-20s FAIL      %8.0f states/s, below %.0f%% of baseline %.0f\n",
				e.Name, e.StatesPerSec, 100**benchGate, b.StatesPerSec)
		default:
			fmt.Printf("bench: %-20s OK        %8.0f states/s (baseline %.0f, %+.0f%%)\n",
				e.Name, e.StatesPerSec, b.StatesPerSec, 100*(e.StatesPerSec/b.StatesPerSec-1))
		}
	}
	if !checkSpillSiblings(cur) {
		failed = true
	}
	if *benchUpdate {
		if err := writeBaseline(path, cur); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("bench: baseline %s updated\n", path)
	}
	if failed {
		return 1
	}
	return 0
}

func measureSuite() ([]benchEntry, error) {
	out := make([]benchEntry, 0, len(benchSuite))
	for _, c := range benchSuite {
		res, err := mcheck.Run(mcheck.Options{
			Protocol: protocol.MustNew(c.Protocol), Procs: c.Procs, Blocks: c.Blocks,
			Words: c.Words, Depth: c.Depth, Workers: *workers, Symmetry: c.Symmetry,
			POR: c.POR, MemBudget: c.MemBudget,
		})
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		if res.Counterexample != nil {
			return nil, fmt.Errorf("bench %s: unexpected violation %v", c.Name, res.Counterexample.Violations)
		}
		out = append(out, benchEntry{
			benchConfig: c, States: res.States, Transitions: res.Transitions,
			StatesPerSec:  res.StatesPerSec,
			SpilledStates: res.SpilledStates, SpilledBytes: res.SpilledBytes,
			SpillRuns: int64(res.SpillRuns),
		})
	}
	return out, nil
}

// checkSpillSiblings gates every spill-mode entry against its
// in-memory sibling from the same run: the budget must actually force
// spilling, exploration must be unchanged, and throughput must hold
// -bench-gate of the sibling's. Returns false on failure.
func checkSpillSiblings(cur []benchEntry) bool {
	byName := make(map[string]benchEntry, len(cur))
	for _, e := range cur {
		byName[e.Name] = e
	}
	ok := true
	for _, e := range cur {
		if e.SpillOf == "" {
			continue
		}
		sib, found := byName[e.SpillOf]
		switch {
		case !found:
			ok = false
			fmt.Printf("bench: %-20s FAIL      spill sibling %q not in suite\n", e.Name, e.SpillOf)
		case e.SpilledStates == 0:
			ok = false
			fmt.Printf("bench: %-20s FAIL      budget %d spilled nothing — not a spill measurement\n", e.Name, e.MemBudget)
		case e.States != sib.States || e.Transitions != sib.Transitions:
			ok = false
			fmt.Printf("bench: %-20s FAIL      spill changed exploration vs %s: states %d→%d transitions %d→%d\n",
				e.Name, sib.Name, sib.States, e.States, sib.Transitions, e.Transitions)
		case e.StatesPerSec < *benchGate*sib.StatesPerSec:
			ok = false
			fmt.Printf("bench: %-20s FAIL      %8.0f states/s, below %.0f%% of in-memory sibling %.0f\n",
				e.Name, e.StatesPerSec, 100**benchGate, sib.StatesPerSec)
		default:
			fmt.Printf("bench: %-20s OK        %8.0f states/s, %.0f%% of in-memory sibling (%d states spilled in %d runs)\n",
				e.Name, e.StatesPerSec, 100*e.StatesPerSec/sib.StatesPerSec, e.SpilledStates, e.SpillRuns)
		}
	}
	return ok
}

func readBaseline(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench baseline %s: %w", path, err)
	}
	return &f, nil
}

func writeBaseline(path string, entries []benchEntry) error {
	f := benchFile{
		Updated: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Gate:    *benchGate,
		Entries: entries,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
