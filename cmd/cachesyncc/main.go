// Command cachesyncc is the cachesync fleet coordinator: it spawns (or
// attaches to) N cachesyncd replicas and serves one routed endpoint in
// front of them.
//
//	go run ./cmd/cachesyncc -replicas 3 -dir /tmp/fleet -addr 127.0.0.1:8345
//	go run ./cmd/cachesyncc -attach 10.0.0.1:8344,10.0.0.2:8344
//
// Requests are routed by consistent-hashing their configuration key,
// so each replica's single-flight dedup and on-disk result cache see
// every repeat of "their" configurations instead of a 1/N shard of
// them. Replicas share a portfile directory and trade cache entries
// over GET /v1/artifact/{key} (cachesyncd -peerdir), so the fleet
// behaves as one logical cache. Failed replicas are ejected on health
// evidence, routed around with bounded backoff, respawned when
// -respawn is set, and re-admitted — to exactly their old hash range —
// once probes recover. POST /v1/sweep is sharded across the fleet and
// merged back in cell order (?stream=1 interleaves the shards' NDJSON
// progress deterministically). POST /v1/check with "shards": N > 1
// partitions one model-checking run's state space across the fleet
// (each replica owns the states that hash to it) and merges a result
// byte-identical to a single replica's, counterexamples included.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"cachesync/internal/cluster"
	"cachesync/internal/portfile"
)

var (
	addr     = flag.String("addr", "127.0.0.1:8345", "coordinator listen address (use :0 for an ephemeral port)")
	portPath = flag.String("portfile", "", "write the coordinator's bound host:port to this file once listening")
	replicas = flag.Int("replicas", 3, "cachesyncd replicas to spawn (0 = attach-only)")
	binary   = flag.String("binary", "", "cachesyncd executable to spawn (default: cachesyncd beside this binary, else $PATH)")
	dir      = flag.String("dir", "", "fleet state directory: portfiles, pidfiles, per-replica caches and logs (default: a temp dir)")
	attach   = flag.String("attach", "", "comma-separated host:port of externally managed replicas to route to")
	workers  = flag.Int("workers", 0, "per-replica execution width (0 = GOMAXPROCS)")
	queue    = flag.Int("queue", 64, "per-replica admission queue length")
	respawn  = flag.Bool("respawn", true, "restart spawned replicas that exit")
	health   = flag.Duration("health", 250*time.Millisecond, "health probe interval")
	failN    = flag.Int("failafter", 2, "consecutive failed probes before a replica is ejected")
)

// findBinary locates cachesyncd for spawning: -binary, then a sibling
// of the coordinator executable, then $PATH.
func findBinary() (string, error) {
	if *binary != "" {
		return *binary, nil
	}
	if self, err := os.Executable(); err == nil {
		sib := filepath.Join(filepath.Dir(self), "cachesyncd")
		if st, err := os.Stat(sib); err == nil && !st.IsDir() {
			return sib, nil
		}
	}
	if p, err := exec.LookPath("cachesyncd"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("cachesyncd not found: pass -binary")
}

func run() error {
	opts := cluster.Options{
		Spawn:          *replicas,
		Dir:            *dir,
		ReplicaWorkers: *workers,
		ReplicaQueue:   *queue,
		HealthInterval: *health,
		FailAfter:      *failN,
		Respawn:        *respawn,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	if *attach != "" {
		for _, a := range strings.Split(*attach, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Attach = append(opts.Attach, a)
			}
		}
	}
	if *replicas > 0 {
		bin, err := findBinary()
		if err != nil {
			return err
		}
		opts.Binary = bin
		if opts.Dir == "" {
			d, err := os.MkdirTemp("", "cachesyncc-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(d)
			opts.Dir = d
		}
	}

	c, err := cluster.New(opts)
	if err != nil {
		return err
	}
	defer c.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *portPath != "" {
		if err := portfile.Write(*portPath, ln.Addr().String()); err != nil {
			return err
		}
		defer os.Remove(*portPath)
	}
	fmt.Printf("cachesyncc listening on %s (spawned=%d attached=%d dir=%s)\n",
		ln.Addr(), *replicas, len(opts.Attach), opts.Dir)

	hs := &http.Server{Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("cachesyncc: shutting down fleet")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func main() {
	flag.Parse()
	if err := run(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cachesyncc:", err)
		os.Exit(1)
	}
}
