package main

import (
	"io"
	"strings"
	"testing"

	"cachesync/internal/runner"
	"cachesync/internal/simrun"
)

func baseTestCfg() simrun.Config {
	return simrun.Config{
		Protocol: "bitar", Procs: 4, Ways: 64, BlockWords: 4,
		Buses: 1, Workload: "mixed", Ops: 300, Seed: 1,
	}
}

func TestCleanRunPassesThroughRunner(t *testing.T) {
	res, err := runner.Run(jobs(baseTestCfg(), []string{"bitar", "illinois"}), runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllPass() {
		t.Fatalf("clean run reported violations:\n%s", res.Output())
	}
	if code := finishCode(res); code != 0 {
		t.Fatalf("clean run exit code = %d", code)
	}
	for _, proto := range []string{"protocol=bitar", "protocol=illinois"} {
		if !strings.Contains(res.Output(), proto) {
			t.Errorf("merged output missing %s", proto)
		}
	}
}

// TestInjectedViolationExitsNonzeroThroughRunner is the regression
// guard for -check: a run with a seeded protocol bug must come back
// failing — and the driver must exit nonzero — even when the
// simulation runs as a runner job rather than inline in main.
func TestInjectedViolationExitsNonzeroThroughRunner(t *testing.T) {
	cfg := baseTestCfg()
	cfg.Inject = "drop-invalidate"
	res, err := runner.Run(jobs(cfg, []string{"bitar"}), runner.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.AllPass() {
		t.Fatalf("injected bug not detected:\n%s", res.Output())
	}
	if code := finishCode(res); code == 0 {
		t.Fatal("injected violation did not produce a nonzero exit code")
	}
	if !strings.Contains(res.Output(), "violation(s):") {
		t.Errorf("output does not report the violations:\n%s", res.Output())
	}
}

// TestInjectedRunMatchesDirectRun pins the runner path to the direct
// path: the artifact a job produces is exactly what runOne renders.
func TestInjectedRunMatchesDirectRun(t *testing.T) {
	cfg := baseTestCfg()
	cfg.Inject = "skip-writeback"
	direct, pass, err := runOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(jobs(cfg, []string{"bitar"}), runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output() != direct {
		t.Error("runner artifact differs from direct runOne output")
	}
	if res.AllPass() != pass {
		t.Errorf("runner pass=%v, direct pass=%v", res.AllPass(), pass)
	}
}

// finishCode evaluates finish's exit code without printing the
// merged output to the test's stdout.
func finishCode(res *runner.Result) int {
	return finish(io.Discard, io.Discard, res)
}
