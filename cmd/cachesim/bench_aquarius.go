package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"cachesync/internal/aquarius"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// The two-tier machine benchmark gate: `cachesim -bench-aquarius FILE`
// runs a fixed suite of routed Aquarius simulations and gates them the
// way -bench-json gates the one-tier engine. Final cycle counts AND
// the broadcast-fraction numerator/denominator are compared exactly: a
// change in either means the machine model changed, which must be a
// deliberate baseline refresh (-bench-update), never drift. Ops/s is
// gated by the shared -bench-gate fraction.

var aqBenchJSON = flag.String("bench-aquarius", "", "run the two-tier Aquarius benchmark suite against this baseline file (see cmd/cachesim/bench_aquarius.go)")

// aqBenchConfig is one fixed two-tier simulation the suite measures.
type aqBenchConfig struct {
	Name     string `json:"name"`
	Workload string `json:"workload"` // mixed | lockdata
	Procs    int    `json:"procs"`
	Ops      int    `json:"ops,omitempty"`        // per-processor operations (mixed)
	LockIter int    `json:"lock_iters,omitempty"` // lockdata iterations
	Remote   int    `json:"remote,omitempty"`     // lower-tier one-way latency
}

// aqBenchEntry is one measured result; everything but OpsPerSec is
// exact-match gated.
type aqBenchEntry struct {
	aqBenchConfig
	Iters         int     `json:"iters"`
	Cycles        int64   `json:"cycles"`
	BroadcastRefs int64   `json:"broadcast_refs"`
	TotalRefs     int64   `json:"total_refs"`
	OpsPerSec     float64 `json:"ops_per_sec"`
}

type aqBenchFile struct {
	Updated string         `json:"updated"`
	Go      string         `json:"go"`
	Gate    float64        `json:"gate"`
	Entries []aqBenchEntry `json:"entries"`
}

var aqBenchSuite = []aqBenchConfig{
	{Name: "twotier-mixed-p8", Workload: "mixed", Procs: 8, Ops: 2000},
	{Name: "remote-lockdata-p8", Workload: "lockdata", Procs: 8, LockIter: 100, Remote: 64},
}

func aqMeasureOne(c aqBenchConfig) (aqBenchEntry, error) {
	var (
		totalTime time.Duration
		best      float64
		repeats   int
		last      aqBenchEntry
	)
	for totalTime < 500*time.Millisecond {
		repeats++
		cfg := aquarius.DefaultConfig(c.Procs)
		cfg.Routed = true
		cfg.RemoteCycles = c.Remote
		a := aquarius.New(cfg)
		l := workload.Layout{G: a.Sync.Geometry()}
		scheme := syncprim.SchemeFor(a.Sync.Protocol())
		var progs []sim.Program
		var ops int64
		switch c.Workload {
		case "lockdata":
			ld := workload.LockedData{Locks: 1, Iters: c.LockIter, Records: 6,
				Instrs: 4, Think: 20, Scheme: scheme, Seed: 1}
			progs, ops = ld.Programs(l, c.Procs), int64(c.Procs*c.LockIter)
		default:
			m := workload.Mixed{Ops: c.Ops, SharedBlocks: 8, PrivBlocks: 24,
				SharedFrac: 0.3, WriteFrac: 0.35, Seed: 1}
			progs, ops = m.Programs(l, c.Procs), int64(c.Procs*c.Ops)
		}
		start := time.Now()
		if err := a.RunPrograms(progs); err != nil {
			return aqBenchEntry{}, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		d := time.Since(start)
		totalTime += d
		if r := float64(ops) / d.Seconds(); r > best {
			best = r
		}
		sync, total := a.BroadcastFraction()
		last = aqBenchEntry{aqBenchConfig: c, Cycles: a.Clock(),
			BroadcastRefs: sync, TotalRefs: total}
	}
	last.Iters = repeats
	last.OpsPerSec = best
	return last, nil
}

func runAquariusBench(path string) int {
	cur := make([]aqBenchEntry, 0, len(aqBenchSuite))
	for _, c := range aqBenchSuite {
		e, err := aqMeasureOne(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cur = append(cur, e)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if werr := writeAquariusBaseline(path, cur); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 2
		}
		fmt.Printf("bench: baseline %s written (%d entries)\n", path, len(cur))
		return 0
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var base aqBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench baseline %s: %v\n", path, err)
		return 2
	}
	baseline := map[string]aqBenchEntry{}
	for _, e := range base.Entries {
		baseline[e.Name] = e
	}
	failed := false
	for _, e := range cur {
		b, ok := baseline[e.Name]
		switch {
		case !ok:
			fmt.Printf("bench: %-22s NEW       %10.0f ops/s (no baseline)\n", e.Name, e.OpsPerSec)
		case e.Cycles != b.Cycles:
			failed = true
			fmt.Printf("bench: %-22s FAIL      simulation changed: final cycles %d→%d\n",
				e.Name, b.Cycles, e.Cycles)
		case e.BroadcastRefs != b.BroadcastRefs || e.TotalRefs != b.TotalRefs:
			failed = true
			fmt.Printf("bench: %-22s FAIL      broadcast fraction changed: %d/%d → %d/%d\n",
				e.Name, b.BroadcastRefs, b.TotalRefs, e.BroadcastRefs, e.TotalRefs)
		case e.OpsPerSec < *simBenchGate*b.OpsPerSec:
			failed = true
			fmt.Printf("bench: %-22s FAIL      %10.0f ops/s, below %.0f%% of baseline %.0f\n",
				e.Name, e.OpsPerSec, 100**simBenchGate, b.OpsPerSec)
		default:
			fmt.Printf("bench: %-22s OK        %10.0f ops/s (baseline %.0f, %+.0f%%)\n",
				e.Name, e.OpsPerSec, b.OpsPerSec, 100*(e.OpsPerSec/b.OpsPerSec-1))
		}
	}
	if *simBenchUpdate {
		if err := writeAquariusBaseline(path, cur); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("bench: baseline %s updated\n", path)
	}
	if failed {
		return 1
	}
	return 0
}

func writeAquariusBaseline(path string, entries []aqBenchEntry) error {
	f := aqBenchFile{
		Updated: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Gate:    *simBenchGate,
		Entries: entries,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
