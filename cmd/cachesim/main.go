// Command cachesim runs one workload on one protocol — or, with
// -protocols, the same workload across several protocols as parallel
// jobs through the experiment engine (internal/runner) — and prints
// the full statistics: the general-purpose driver for exploring the
// simulator.
//
//	go run ./cmd/cachesim -protocol bitar -procs 8 -workload lock -iters 50
//	go run ./cmd/cachesim -protocol illinois -workload mixed -ops 2000
//	go run ./cmd/cachesim -protocols all -j 8 -workload mixed
//	go run ./cmd/cachesim -workload trace -trace ref.trace
//
// The online coherence checker (-check, on by default) validates
// every bus transaction and the quiesced final state; violations make
// the run exit nonzero. -inject seeds a deliberate protocol bug (for
// exercising the checker): an injected run must fail.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"cachesync"
	"cachesync/internal/mcheck"
	"cachesync/internal/runner"
	"cachesync/internal/simrun"
)

var (
	protoName  = flag.String("protocol", "bitar", "protocol name (see -list)")
	protoList  = flag.String("protocols", "", "comma-separated protocol names, or 'all': run each as a parallel job through the runner (overrides -protocol)")
	workers    = flag.Int("j", 0, "worker pool size for multi-protocol runs (default GOMAXPROCS)")
	list       = flag.Bool("list", false, "list protocols and exit")
	listInject = flag.Bool("list-injections", false, "list injectable seeded bugs and exit")
	inject     = flag.String("inject", "", "inject the named seeded protocol bug; with -check the run must exit nonzero")
	procs      = flag.Int("procs", 4, "processor count")
	ways       = flag.Int("ways", 64, "cache ways (1 set, fully associative)")
	blockW     = flag.Int("block", 4, "block size in words")
	unitW      = flag.Int("unit", 0, "transfer unit in words (0 = whole block)")
	unitMode   = flag.Bool("unitmode", false, "enable transfer-unit cost accounting")
	wname      = flag.String("workload", "mixed", "workload: mixed | lock | pc | queues | statesave | lockdata | trace")
	ops        = flag.Int("ops", 500, "operations per processor (mixed)")
	iters      = flag.Int("iters", 25, "iterations (lock, pc, queues)")
	hold       = flag.Int64("hold", 20, "critical-section cycles (lock)")
	seed       = flag.Int64("seed", 1, "workload seed")
	traceFile  = flag.String("trace", "", "trace file to replay (workload=trace)")
	schemeStr  = flag.String("scheme", "", "lock scheme: cachelock | tas | ttas | tasmemory (default: best for protocol)")
	buses      = flag.Int("buses", 1, "broadcast buses (1 or 2, Section A.2)")
	logN       = flag.Int("log", 0, "print the first N bus transactions (0 = off)")
	check      = flag.Bool("check", true, "run the online coherence checker after every bus transaction; violations make the run exit nonzero")
	sweepProcs = flag.String("sweep-procs", "", "processor counts to sweep, e.g. 2..8 or 1,2,4,8: run every selected protocol at each count on the in-process parallel cell executor (width -j), output merged in cell order")
	tiers      = flag.Int("tiers", 1, "memory tiers: 1 = classic one-bus system, 2 = routed two-tier Aquarius machine (sync bus + crossbar)")
	remoteCyc  = flag.Int("remote-cycles", 0, "with -tiers 2, one-way latency to a disaggregated lower tier (0 = local crossbar)")
	sweepRem   = flag.String("sweep-remote", "", "remote-latency values to sweep with -tiers 2, e.g. 0,16,64,256 (same cell executor as -sweep-procs; axes cross)")
)

// parseProcCounts accepts "a..b" ranges and comma lists.
func parseProcCounts(spec string) ([]int, error) {
	if lo, hi, ok := strings.Cut(spec, ".."); ok {
		a, err1 := strconv.Atoi(strings.TrimSpace(lo))
		b, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil || a < 1 || b < a {
			return nil, fmt.Errorf("bad -sweep-procs range %q", spec)
		}
		var out []int
		for n := a; n <= b; n++ {
			out = append(out, n)
		}
		return out, nil
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sweep-procs entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runSweep fans protos × counts × remote latencies over the
// in-process parallel cell executor. Cells merge in submission order,
// so the printed output is byte-identical to a sequential loop at any
// worker count.
func runSweep(base simrun.Config, protos []string, counts, remotes []int) int {
	var cfgs []simrun.Config
	for _, p := range protos {
		for _, n := range counts {
			for _, r := range remotes {
				cfg := base
				cfg.Protocol = p
				cfg.Procs = n
				cfg.RemoteCycles = r
				cfgs = append(cfgs, cfg.Normalize())
			}
		}
	}
	pass := true
	err := simrun.RunCells(context.Background(), cfgs, *workers, func(i int, res simrun.Result) {
		hdr := fmt.Sprintf("%s procs=%d", cfgs[i].Protocol, cfgs[i].Procs)
		if len(remotes) > 1 || cfgs[i].RemoteCycles > 0 {
			hdr += fmt.Sprintf(" remote=%d", cfgs[i].RemoteCycles)
		}
		fmt.Printf("=== %s ===\n%s\n", hdr, res.Output)
		pass = pass && res.Pass
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if !pass {
		fmt.Fprintln(os.Stderr, "coherence checker: violations in at least one sweep cell")
		return 1
	}
	return 0
}

// parseRemoteCycles accepts a comma list of latencies (0 allowed).
func parseRemoteCycles(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -sweep-remote entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runOne executes one configured simulation and renders its report —
// delegated to internal/simrun, the layer cmd/cachesim now shares with
// the cachesyncd daemon (which is what keeps daemon responses
// byte-identical to this CLI's output). pass is false when the
// coherence checker found violations (they are included in the
// rendered output).
func runOne(cfg simrun.Config) (out string, pass bool, err error) {
	res, err := simrun.Run(context.Background(), cfg)
	if err != nil {
		return "", false, err
	}
	return res.Output, res.Pass, nil
}

// jobs builds one runner job per protocol from the base config.
func jobs(base simrun.Config, protos []string) []runner.Job {
	out := make([]runner.Job, 0, len(protos))
	for _, p := range protos {
		cfg := base
		cfg.Protocol = p
		out = append(out, runner.Job{
			Name:       "cachesim/" + p,
			ConfigHash: cfg.Hash(),
			Run: func() (runner.Artifact, error) {
				text, pass, err := runOne(cfg)
				if err != nil {
					return runner.Artifact{}, err
				}
				return runner.Artifact{Output: text, Pass: pass}, nil
			},
		})
	}
	return out
}

// finish prints the merged output and returns the process exit code:
// nonzero when any run's checker found violations.
func finish(w, ew io.Writer, res *runner.Result) int {
	fmt.Fprint(w, res.Output())
	if !res.AllPass() {
		var bad []string
		for _, j := range res.Jobs {
			if !j.Artifact.Pass {
				bad = append(bad, j.Artifact.Name)
			}
		}
		fmt.Fprintf(ew, "coherence checker: violations in %s\n", strings.Join(bad, ", "))
		return 1
	}
	return 0
}

func main() {
	flag.Parse()
	if *simBenchJSON != "" {
		os.Exit(runSimBench(*simBenchJSON))
	}
	if *aqBenchJSON != "" {
		os.Exit(runAquariusBench(*aqBenchJSON))
	}
	if *list {
		for _, n := range cachesync.Protocols() {
			fmt.Println(n)
		}
		return
	}
	if *listInject {
		for _, n := range mcheck.MutantNames() {
			fmt.Println(n)
		}
		return
	}

	base := simrun.Config{
		Protocol: *protoName, Inject: *inject,
		Procs: *procs, Ways: *ways, BlockWords: *blockW, UnitWords: *unitW,
		UnitMode: *unitMode, Buses: *buses,
		Workload: *wname, Ops: *ops, Iters: *iters,
		Hold: *hold, Seed: *seed,
		TraceFile: *traceFile, Scheme: *schemeStr,
		LogN: *logN, NoCheck: !*check,
		Tiers: *tiers, RemoteCycles: *remoteCyc,
	}
	protos := []string{*protoName}
	if *protoList != "" {
		if strings.EqualFold(*protoList, "all") {
			protos = cachesync.Protocols()
		} else {
			protos = strings.Split(*protoList, ",")
			for i := range protos {
				protos[i] = strings.TrimSpace(protos[i])
			}
		}
	}

	if *sweepProcs != "" || *sweepRem != "" {
		counts := []int{base.Procs}
		if *sweepProcs != "" {
			var err error
			if counts, err = parseProcCounts(*sweepProcs); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		remotes := []int{base.RemoteCycles}
		if *sweepRem != "" {
			var err error
			if remotes, err = parseRemoteCycles(*sweepRem); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		os.Exit(runSweep(base, protos, counts, remotes))
	}

	// No result cache here: cachesim is the interactive exploration
	// driver, and trace-file contents are not part of the cache key.
	res, err := runner.Run(jobs(base, protos), runner.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(finish(os.Stdout, os.Stderr, res))
}
