// Command cachesim runs one workload on one protocol — or, with
// -protocols, the same workload across several protocols as parallel
// jobs through the experiment engine (internal/runner) — and prints
// the full statistics: the general-purpose driver for exploring the
// simulator.
//
//	go run ./cmd/cachesim -protocol bitar -procs 8 -workload lock -iters 50
//	go run ./cmd/cachesim -protocol illinois -workload mixed -ops 2000
//	go run ./cmd/cachesim -protocols all -j 8 -workload mixed
//	go run ./cmd/cachesim -workload trace -trace ref.trace
//
// The online coherence checker (-check, on by default) validates
// every bus transaction and the quiesced final state; violations make
// the run exit nonzero. -inject seeds a deliberate protocol bug (for
// exercising the checker): an injected run must fail.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cachesync"
	"cachesync/internal/addr"
	"cachesync/internal/cache"
	"cachesync/internal/coherence"
	"cachesync/internal/mcheck"
	"cachesync/internal/protocol"
	"cachesync/internal/runner"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/trace"
	"cachesync/internal/workload"
)

var (
	protoName  = flag.String("protocol", "bitar", "protocol name (see -list)")
	protoList  = flag.String("protocols", "", "comma-separated protocol names, or 'all': run each as a parallel job through the runner (overrides -protocol)")
	workers    = flag.Int("j", 0, "worker pool size for multi-protocol runs (default GOMAXPROCS)")
	list       = flag.Bool("list", false, "list protocols and exit")
	listInject = flag.Bool("list-injections", false, "list injectable seeded bugs and exit")
	inject     = flag.String("inject", "", "inject the named seeded protocol bug; with -check the run must exit nonzero")
	procs      = flag.Int("procs", 4, "processor count")
	ways       = flag.Int("ways", 64, "cache ways (1 set, fully associative)")
	blockW     = flag.Int("block", 4, "block size in words")
	unitW      = flag.Int("unit", 0, "transfer unit in words (0 = whole block)")
	unitMode   = flag.Bool("unitmode", false, "enable transfer-unit cost accounting")
	wname      = flag.String("workload", "mixed", "workload: mixed | lock | pc | queues | statesave | trace")
	ops        = flag.Int("ops", 500, "operations per processor (mixed)")
	iters      = flag.Int("iters", 25, "iterations (lock, pc, queues)")
	hold       = flag.Int64("hold", 20, "critical-section cycles (lock)")
	seed       = flag.Int64("seed", 1, "workload seed")
	traceFile  = flag.String("trace", "", "trace file to replay (workload=trace)")
	schemeStr  = flag.String("scheme", "", "lock scheme: cachelock | tas | ttas | tasmemory (default: best for protocol)")
	buses      = flag.Int("buses", 1, "broadcast buses (1 or 2, Section A.2)")
	logN       = flag.Int("log", 0, "print the first N bus transactions (0 = off)")
	check      = flag.Bool("check", true, "run the online coherence checker after every bus transaction; violations make the run exit nonzero")
)

// runCfg captures one simulation's parameters (one runner job).
type runCfg struct {
	proto, inject string
	procs, ways   int
	blockW, unitW int
	unitMode      bool
	buses         int
	wname         string
	ops, iters    int
	hold, seed    int64
	traceFile     string
	schemeStr     string
	logN          int
	check         bool
}

// hash summarizes every parameter the output depends on (the job's
// ConfigHash).
func (c runCfg) hash() string {
	return fmt.Sprintf("%s inject=%s p=%d w=%d b=%d u=%d um=%v buses=%d %s ops=%d it=%d hold=%d seed=%d trace=%s scheme=%s log=%d check=%v",
		c.proto, c.inject, c.procs, c.ways, c.blockW, c.unitW, c.unitMode, c.buses,
		c.wname, c.ops, c.iters, c.hold, c.seed, c.traceFile, c.schemeStr, c.logN, c.check)
}

// buildSystem assembles the simulator, optionally wrapping the
// protocol with an injected bug (which is why this does not go
// through the cachesync facade: mutants are not registered names).
func buildSystem(cfg runCfg) (*sim.System, error) {
	p, err := protocol.New(cfg.proto)
	if err != nil {
		return nil, err
	}
	if cfg.inject != "" {
		if p, err = mcheck.Mutate(p, cfg.inject); err != nil {
			return nil, err
		}
	}
	bw := cfg.blockW
	if bw == 0 {
		bw = 4
	}
	if p.Features().OneWordBlocks {
		bw = 1
	}
	unit := cfg.unitW
	if unit == 0 || unit > bw {
		unit = bw
	}
	g, err := addr.NewGeometry(bw, unit)
	if err != nil {
		return nil, err
	}
	if cfg.buses < 1 || cfg.buses > 2 {
		return nil, fmt.Errorf("cachesim: -buses must be 1 or 2, got %d", cfg.buses)
	}
	return sim.New(sim.Config{
		Procs:    cfg.procs,
		Protocol: p,
		Geometry: g,
		Cache:    cache.Config{Sets: 1, Ways: cfg.ways, UnitMode: cfg.unitMode},
		Timing:   sim.DefaultTiming(),
		NumBuses: cfg.buses,
	}), nil
}

// buildWorkload constructs the per-processor workload closures.
func buildWorkload(cfg runCfg, l workload.Layout, scheme syncprim.Scheme) ([]func(*sim.Proc), error) {
	switch cfg.wname {
	case "mixed":
		return workload.Mixed{Ops: cfg.ops, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: cfg.seed}.Build(l, cfg.procs), nil
	case "lock":
		return workload.LockContention{Locks: 1, Iters: cfg.iters, HoldCycles: cfg.hold,
			ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: cfg.seed}.Build(l, cfg.procs), nil
	case "pc":
		return workload.ProducerConsumer{Items: cfg.iters, WritesPerItem: 4, Scheme: scheme}.Build(l, cfg.procs), nil
	case "queues":
		return workload.ServiceQueues{Requests: cfg.iters, Scheme: scheme, Seed: cfg.seed}.Build(l, cfg.procs), nil
	case "statesave":
		return workload.StateSave{Switches: cfg.iters, StateBlocks: 4}.Build(l, cfg.procs), nil
	case "trace":
		f, err := os.Open(cfg.traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := trace.Decode(f)
		if err != nil {
			return nil, err
		}
		return tr.Workloads(cfg.procs), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.wname)
	}
}

// runOne executes one configured simulation and renders its report.
// pass is false when the coherence checker found violations (they are
// included in the rendered output).
func runOne(cfg runCfg) (out string, pass bool, err error) {
	sys, err := buildSystem(cfg)
	if err != nil {
		return "", false, err
	}
	scheme, serr := cachesync.BestScheme(cfg.proto)
	if serr == nil && cfg.schemeStr != "" {
		for s := syncprim.CacheLock; s <= syncprim.TASMemory; s++ {
			if s.String() == cfg.schemeStr {
				scheme = s
			}
		}
	}
	l := workload.Layout{G: sys.Geometry()}
	ws, err := buildWorkload(cfg, l, scheme)
	if err != nil {
		return "", false, err
	}

	var evlog *sim.EventLog
	if cfg.logN > 0 {
		evlog = sys.AttachLog(cfg.logN)
	}
	var violations []string
	if cfg.check {
		seen := map[string]bool{}
		sys.OnTxn = func() {
			for _, v := range coherence.Check(sys) {
				if !seen[v] {
					seen[v] = true
					violations = append(violations, fmt.Sprintf("cycle %d: %s", sys.Clock(), v))
				}
			}
		}
	}
	if err := sys.Run(ws); err != nil {
		return "", false, err
	}
	if cfg.check {
		// The checker runs between transactions, so transient in-flight
		// states are quiesced; any report is a real incoherence.
		violations = appendFinalCheck(sys, violations)
	}

	var b strings.Builder
	if evlog != nil {
		_ = evlog.Dump(&b)
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "protocol=%s procs=%d workload=%s scheme=%v\n", sys.Protocol().Name(), cfg.procs, cfg.wname, scheme)
	fmt.Fprintf(&b, "finished at cycle %d\n\n", sys.Clock())
	h := &sys.LockLatency
	if h.Count() > 0 {
		fmt.Fprintf(&b, "hardware lock acquisitions: %d (mean %.1f cycles, max %d)\n\n", h.Count(), h.Mean(), h.Max())
	}
	b.WriteString(cachesync.RenderStats(sys.Stats().Snapshot()))
	b.WriteString("\n")
	if len(violations) > 0 {
		fmt.Fprintf(&b, "coherence checker: %d violation(s):\n", len(violations))
		for _, v := range violations {
			b.WriteString("  " + v + "\n")
		}
		return b.String(), false, nil
	}
	if cfg.check {
		b.WriteString("coherence checker: clean (every bus transaction and the final state)\n")
	}
	return b.String(), true, nil
}

// jobs builds one runner job per protocol from the base config.
func jobs(base runCfg, protos []string) []runner.Job {
	out := make([]runner.Job, 0, len(protos))
	for _, p := range protos {
		cfg := base
		cfg.proto = p
		out = append(out, runner.Job{
			Name:       "cachesim/" + p,
			ConfigHash: cfg.hash(),
			Run: func() (runner.Artifact, error) {
				text, pass, err := runOne(cfg)
				if err != nil {
					return runner.Artifact{}, err
				}
				return runner.Artifact{Output: text, Pass: pass}, nil
			},
		})
	}
	return out
}

// finish prints the merged output and returns the process exit code:
// nonzero when any run's checker found violations.
func finish(w, ew io.Writer, res *runner.Result) int {
	fmt.Fprint(w, res.Output())
	if !res.AllPass() {
		var bad []string
		for _, j := range res.Jobs {
			if !j.Artifact.Pass {
				bad = append(bad, j.Artifact.Name)
			}
		}
		fmt.Fprintf(ew, "coherence checker: violations in %s\n", strings.Join(bad, ", "))
		return 1
	}
	return 0
}

func main() {
	flag.Parse()
	if *list {
		for _, n := range cachesync.Protocols() {
			fmt.Println(n)
		}
		return
	}
	if *listInject {
		for _, n := range mcheck.MutantNames() {
			fmt.Println(n)
		}
		return
	}

	base := runCfg{
		proto: *protoName, inject: *inject,
		procs: *procs, ways: *ways, blockW: *blockW, unitW: *unitW,
		unitMode: *unitMode, buses: *buses,
		wname: *wname, ops: *ops, iters: *iters,
		hold: *hold, seed: *seed,
		traceFile: *traceFile, schemeStr: *schemeStr,
		logN: *logN, check: *check,
	}
	protos := []string{*protoName}
	if *protoList != "" {
		if strings.EqualFold(*protoList, "all") {
			protos = cachesync.Protocols()
		} else {
			protos = strings.Split(*protoList, ",")
			for i := range protos {
				protos[i] = strings.TrimSpace(protos[i])
			}
		}
	}

	// No result cache here: cachesim is the interactive exploration
	// driver, and trace-file contents are not part of the cache key.
	res, err := runner.Run(jobs(base, protos), runner.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(finish(os.Stdout, os.Stderr, res))
}

// appendFinalCheck re-validates the quiesced final state (a run whose
// last operation is a pure cache hit fires no OnTxn afterwards).
func appendFinalCheck(sys *sim.System, violations []string) []string {
	for _, v := range coherence.Check(sys) {
		entry := fmt.Sprintf("final state: %s", v)
		dup := false
		for _, have := range violations {
			if have == entry {
				dup = true
				break
			}
		}
		if !dup {
			violations = append(violations, entry)
		}
	}
	return violations
}
