// Command cachesim runs one workload on one protocol and prints the
// full statistics — the general-purpose driver for exploring the
// simulator.
//
//	go run ./cmd/cachesim -protocol bitar -procs 8 -workload lock -iters 50
//	go run ./cmd/cachesim -protocol illinois -workload mixed -ops 2000
//	go run ./cmd/cachesim -workload trace -trace ref.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"cachesync"
	"cachesync/internal/coherence"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/trace"
	"cachesync/internal/workload"
)

var (
	protoName = flag.String("protocol", "bitar", "protocol name (see -list)")
	list      = flag.Bool("list", false, "list protocols and exit")
	procs     = flag.Int("procs", 4, "processor count")
	ways      = flag.Int("ways", 64, "cache ways (1 set, fully associative)")
	blockW    = flag.Int("block", 4, "block size in words")
	unitW     = flag.Int("unit", 0, "transfer unit in words (0 = whole block)")
	unitMode  = flag.Bool("unitmode", false, "enable transfer-unit cost accounting")
	wname     = flag.String("workload", "mixed", "workload: mixed | lock | pc | queues | statesave | trace")
	ops       = flag.Int("ops", 500, "operations per processor (mixed)")
	iters     = flag.Int("iters", 25, "iterations (lock, pc, queues)")
	hold      = flag.Int64("hold", 20, "critical-section cycles (lock)")
	seed      = flag.Int64("seed", 1, "workload seed")
	traceFile = flag.String("trace", "", "trace file to replay (workload=trace)")
	schemeStr = flag.String("scheme", "", "lock scheme: cachelock | tas | ttas | tasmemory (default: best for protocol)")
	buses     = flag.Int("buses", 1, "broadcast buses (1 or 2, Section A.2)")
	logN      = flag.Int("log", 0, "print the first N bus transactions (0 = off)")
	check     = flag.Bool("check", true, "run the online coherence checker after every bus transaction; violations make the run exit nonzero")
)

func main() {
	flag.Parse()
	if *list {
		for _, n := range cachesync.Protocols() {
			fmt.Println(n)
		}
		return
	}
	unit := *unitW
	if unit == 0 {
		unit = *blockW
	}
	m, err := cachesync.New(cachesync.Config{
		Protocol: *protoName, Procs: *procs,
		BlockWords: *blockW, TransferWords: unit,
		Ways: *ways, UnitMode: *unitMode, Buses: *buses,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	scheme, err := cachesync.BestScheme(*protoName)
	if err == nil && *schemeStr != "" {
		for s := syncprim.CacheLock; s <= syncprim.TASMemory; s++ {
			if s.String() == *schemeStr {
				scheme = s
			}
		}
	}

	l := m.Layout()
	var ws []func(*sim.Proc)
	switch *wname {
	case "mixed":
		ws = workload.Mixed{Ops: *ops, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: *seed}.Build(l, *procs)
	case "lock":
		ws = workload.LockContention{Locks: 1, Iters: *iters, HoldCycles: *hold,
			ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: *seed}.Build(l, *procs)
	case "pc":
		ws = workload.ProducerConsumer{Items: *iters, WritesPerItem: 4, Scheme: scheme}.Build(l, *procs)
	case "queues":
		ws = workload.ServiceQueues{Requests: *iters, Scheme: scheme, Seed: *seed}.Build(l, *procs)
	case "statesave":
		ws = workload.StateSave{Switches: *iters, StateBlocks: 4}.Build(l, *procs)
	case "trace":
		f, err := os.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ws = tr.Workloads(*procs)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wname)
		os.Exit(2)
	}

	var evlog *sim.EventLog
	if *logN > 0 {
		evlog = m.System().AttachLog(*logN)
	}
	var violations []string
	if *check {
		sys := m.System()
		seen := map[string]bool{}
		sys.OnTxn = func() {
			for _, v := range coherence.Check(sys) {
				if !seen[v] {
					seen[v] = true
					violations = append(violations, fmt.Sprintf("cycle %d: %s", sys.Clock(), v))
				}
			}
		}
	}
	if err := m.Run(ws); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *check {
		// The checker runs between transactions, so transient in-flight
		// states are quiesced; any report is a real incoherence.
		violations = appendFinalCheck(m.System(), violations)
	}
	if evlog != nil {
		_ = evlog.Dump(os.Stdout)
		fmt.Println()
	}
	fmt.Printf("protocol=%s procs=%d workload=%s scheme=%v\n", m.ProtocolName(), *procs, *wname, scheme)
	fmt.Printf("finished at cycle %d\n\n", m.Clock())
	if n, mean, max := m.LockStats(); n > 0 {
		fmt.Printf("hardware lock acquisitions: %d (mean %.1f cycles, max %d)\n\n", n, mean, max)
	}
	fmt.Println(cachesync.RenderStats(m.Stats()))
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "coherence checker: %d violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		os.Exit(1)
	}
	if *check {
		fmt.Println("coherence checker: clean (every bus transaction and the final state)")
	}
}

// appendFinalCheck re-validates the quiesced final state (a run whose
// last operation is a pure cache hit fires no OnTxn afterwards).
func appendFinalCheck(sys *sim.System, violations []string) []string {
	for _, v := range coherence.Check(sys) {
		entry := fmt.Sprintf("final state: %s", v)
		dup := false
		for _, have := range violations {
			if have == entry {
				dup = true
				break
			}
		}
		if !dup {
			violations = append(violations, entry)
		}
	}
	return violations
}
