package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"cachesync"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

// The simulator-engine benchmark gate: `cachesim -bench-json FILE`
// runs a fixed suite of direct-execution simulations and compares
// operation throughput against the committed baseline, exactly as
// cmd/mcheck gates the model checker. A change that silently drops
// the engine below -bench-gate × baseline ops/s fails CI like a
// correctness bug. Final cycle counts are compared exactly: a cycle
// change means the simulation itself changed, which is a determinism
// bug, not a perf regression.
//
// Semantics:
//   - FILE absent   → run the suite, write FILE, exit 0.
//   - FILE present  → run the suite; fail (exit 1) below the gate or
//     on any final-cycle mismatch.
//   - -bench-update → also rewrite FILE with this run's numbers.
//
// Throughput numbers are machine-dependent; refresh the baseline with
// -bench-update when moving hardware.

var (
	simBenchJSON   = flag.String("bench-json", "", "run the engine benchmark suite against this baseline file (see cmd/cachesim/bench.go)")
	simBenchGate   = flag.Float64("bench-gate", 0.7, "fail if ops/s falls below this fraction of the baseline")
	simBenchUpdate = flag.Bool("bench-update", false, "rewrite the baseline with this run's numbers")
)

// simBenchConfig is one fixed simulation the suite measures.
type simBenchConfig struct {
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Workload string `json:"workload"` // mixed | lock
	Procs    int    `json:"procs"`
	Ops      int    `json:"ops"`        // per-processor operations (mixed)
	LockIter int    `json:"lock_iters"` // lock iterations (lock)
}

// simBenchEntry is one measured result. Iters is the best-of-N repeat
// count simMeasureOne actually ran — a measurement-quality indicator
// (it used to be a misrendered config field that always read 0).
type simBenchEntry struct {
	simBenchConfig
	Iters     int     `json:"iters"`
	Cycles    int64   `json:"cycles"` // final simulated clock — exact-match gated
	OpsPerSec float64 `json:"ops_per_sec"`
}

// simBenchFile is the JSON baseline artifact.
type simBenchFile struct {
	Updated string          `json:"updated"`
	Go      string          `json:"go"`
	Gate    float64         `json:"gate"`
	Entries []simBenchEntry `json:"entries"`
}

// simBenchSuite is the fixed configuration set; names are the stable
// baseline keys. The mixed/bitar-p8 entry is the headline number the
// direct-execution rework targets. Each run is repeated until ~300ms
// has elapsed so the ops/s measurement is stable against scheduler
// jitter.
var simBenchSuite = []simBenchConfig{
	{Name: "mixed-bitar-p8", Protocol: "bitar", Workload: "mixed", Procs: 8, Ops: 2000},
	{Name: "mixed-illinois-p8", Protocol: "illinois", Workload: "mixed", Procs: 8, Ops: 2000},
	{Name: "mixed-dragon-p8", Protocol: "dragon", Workload: "mixed", Procs: 8, Ops: 2000},
	{Name: "mixed-writethrough-p8", Protocol: "writethrough", Workload: "mixed", Procs: 8, Ops: 2000},
	{Name: "lock-bitar-p8", Protocol: "bitar", Workload: "lock", Procs: 8, LockIter: 100},
}

// simBenchPrograms builds the Program set for one config (a fresh set
// per run: programs carry per-run cursor state).
func simBenchPrograms(c simBenchConfig, l workload.Layout, scheme syncprim.Scheme) ([]cachesync.Program, int64) {
	switch c.Workload {
	case "lock":
		lc := workload.LockContention{Locks: 1, Iters: c.LockIter, HoldCycles: 20,
			ThinkCycles: 10, CSWrites: 2, Scheme: scheme, Seed: 1}
		// Count one "op" per acquire/release pair per processor.
		return lc.Programs(l, c.Procs), int64(c.Procs * c.LockIter)
	default:
		m := workload.Mixed{Ops: c.Ops, SharedBlocks: 8, PrivBlocks: 24,
			SharedFrac: 0.3, WriteFrac: 0.35, Seed: 1}
		return m.Programs(l, c.Procs), int64(c.Procs * c.Ops)
	}
}

func simMeasureOne(c simBenchConfig) (simBenchEntry, error) {
	scheme, err := cachesync.BestScheme(c.Protocol)
	if err != nil {
		return simBenchEntry{}, err
	}
	var (
		totalTime  time.Duration
		best       float64
		lastCycles int64
		repeats    int
	)
	// Best-of-N: ops/s on a shared machine varies run to run far more
	// than the engine does, and the fastest run is the least disturbed
	// measurement of the code under test.
	for totalTime < 500*time.Millisecond {
		repeats++
		m, err := cachesync.New(cachesync.Config{Protocol: c.Protocol, Procs: c.Procs})
		if err != nil {
			return simBenchEntry{}, err
		}
		ps, ops := simBenchPrograms(c, m.Layout(), scheme)
		start := time.Now()
		if err := m.RunPrograms(ps); err != nil {
			return simBenchEntry{}, fmt.Errorf("bench %s: %w", c.Name, err)
		}
		d := time.Since(start)
		totalTime += d
		if r := float64(ops) / d.Seconds(); r > best {
			best = r
		}
		lastCycles = m.Clock()
	}
	return simBenchEntry{
		simBenchConfig: c,
		Iters:          repeats,
		Cycles:         lastCycles,
		OpsPerSec:      best,
	}, nil
}

func runSimBench(path string) int {
	cur := make([]simBenchEntry, 0, len(simBenchSuite))
	for _, c := range simBenchSuite {
		e, err := simMeasureOne(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		cur = append(cur, e)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if werr := writeSimBaseline(path, cur); werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			return 2
		}
		fmt.Printf("bench: baseline %s written (%d entries)\n", path, len(cur))
		return 0
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var base simBenchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bench baseline %s: %v\n", path, err)
		return 2
	}
	baseline := map[string]simBenchEntry{}
	for _, e := range base.Entries {
		baseline[e.Name] = e
	}
	failed := false
	for _, e := range cur {
		b, ok := baseline[e.Name]
		switch {
		case !ok:
			fmt.Printf("bench: %-22s NEW       %10.0f ops/s (no baseline)\n", e.Name, e.OpsPerSec)
		case e.Cycles != b.Cycles:
			failed = true
			fmt.Printf("bench: %-22s FAIL      simulation changed: final cycles %d→%d\n",
				e.Name, b.Cycles, e.Cycles)
		case e.OpsPerSec < *simBenchGate*b.OpsPerSec:
			failed = true
			fmt.Printf("bench: %-22s FAIL      %10.0f ops/s, below %.0f%% of baseline %.0f\n",
				e.Name, e.OpsPerSec, 100**simBenchGate, b.OpsPerSec)
		default:
			fmt.Printf("bench: %-22s OK        %10.0f ops/s (baseline %.0f, %+.0f%%)\n",
				e.Name, e.OpsPerSec, b.OpsPerSec, 100*(e.OpsPerSec/b.OpsPerSec-1))
		}
	}
	if *simBenchUpdate {
		if err := writeSimBaseline(path, cur); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Printf("bench: baseline %s updated\n", path)
	}
	if failed {
		return 1
	}
	return 0
}

func writeSimBaseline(path string, entries []simBenchEntry) error {
	f := simBenchFile{
		Updated: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		Gate:    *simBenchGate,
		Entries: entries,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
