// Producer/consumer: the Prolog/dataflow sharing pattern of the
// paper's Section B.1 — one process produces variable bindings,
// another consumes them and reports back — run over every protocol so
// the handling of actively shared data (Section D) can be compared.
// Run with:
//
//	go run ./examples/producer_consumer
package main

import (
	"fmt"
	"os"

	"cachesync"
)

const items = 50

func run(proto string) (cycles int64, busCycles int64, err error) {
	m, err := cachesync.New(cachesync.Config{Protocol: proto, Procs: 2})
	if err != nil {
		return 0, 0, err
	}
	scheme, err := cachesync.BestScheme(proto)
	if err != nil {
		return 0, 0, err
	}
	l := m.Layout()
	lock := l.LockAddr(0)
	binding := l.G.Base(l.SharedBlock(0)) // the produced variable binding
	flag := l.LockAddr(1)                 // handoff flag on its own block

	producer := func(p *cachesync.Proc) {
		for i := uint64(1); i <= items; i++ {
			cachesync.Acquire(p, scheme, lock)
			p.Write(binding, i*i) // bind the variable
			cachesync.Release(p, scheme, lock)
			p.Write(flag, i) // signal the consumer
			for p.Read(flag) != 0 {
				p.Compute(4) // wait for the report-back
			}
		}
	}
	consumer := func(p *cachesync.Proc) {
		for i := uint64(1); i <= items; i++ {
			for p.Read(flag) != i {
				p.Compute(4)
			}
			cachesync.Acquire(p, scheme, lock)
			if v := p.Read(binding); v != i*i {
				panic(fmt.Sprintf("%s: consumed %d, want %d", proto, v, i*i))
			}
			cachesync.Release(p, scheme, lock)
			p.Write(flag, 0) // report back (Section B.1)
		}
	}
	if err := m.Run([]cachesync.Workload{producer, consumer}); err != nil {
		return 0, 0, err
	}
	return m.Clock(), m.Stats()["bus.cycles"], nil
}

func main() {
	fmt.Printf("%-14s %12s %12s\n", "protocol", "total cycles", "bus cycles")
	for _, proto := range cachesync.Protocols() {
		cycles, busCycles, err := run(proto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", proto, err)
			continue
		}
		fmt.Printf("%-14s %12d %12d\n", proto, cycles, busCycles)
	}
	fmt.Println("\nall values were passed intact on every protocol")
}
