// Quickstart: build a 4-processor machine running the paper's
// protocol, pass a value between processors, take a lock, and print
// the statistics. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cachesync"
)

func main() {
	m, err := cachesync.New(cachesync.Config{Protocol: "bitar", Procs: 4})
	if err != nil {
		panic(err)
	}
	l := m.Layout()
	lock := l.LockAddr(0)                     // a lock block (hard atom)
	data := l.G.Base(l.SharedBlock(0))        // shared data block
	private := l.G.Base(l.PrivateBlock(3, 0)) // processor 3's private data

	err = m.Run([]cachesync.Workload{
		// Processor 0: produce a value under the lock.
		func(p *cachesync.Proc) {
			cachesync.Acquire(p, cachesync.CacheLock, lock)
			p.Write(data, 1986)
			cachesync.Release(p, cachesync.CacheLock, lock)
		},
		// Processor 1: consume it.
		func(p *cachesync.Proc) {
			p.Compute(200)
			cachesync.Acquire(p, cachesync.CacheLock, lock)
			v := p.Read(data)
			cachesync.Release(p, cachesync.CacheLock, lock)
			fmt.Printf("processor 1 read %d (cache line now %s)\n", v, m.BlockState(1, data))
		},
		// Processor 2: contend for the same lock.
		func(p *cachesync.Proc) {
			p.Compute(50)
			cachesync.Acquire(p, cachesync.CacheLock, lock)
			p.Compute(100)
			cachesync.Release(p, cachesync.CacheLock, lock)
		},
		// Processor 3: private work — no bus traffic after the first touch.
		func(p *cachesync.Proc) {
			for i := 0; i < 32; i++ {
				p.Write(private, uint64(i))
			}
		},
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("simulation finished at cycle %d on %q\n", m.Clock(), m.ProtocolName())
	n, mean, max := m.LockStats()
	fmt.Printf("lock acquisitions: %d (mean latency %.1f cycles, max %d)\n", n, mean, max)
	st := m.Stats()
	fmt.Printf("bus: %d read, %d readx, %d upgrade, %d unlock broadcasts, %d total cycles\n",
		st["bus.read"], st["bus.readx"], st["bus.upgrade"], st["bus.unlock"], st["bus.cycles"])
}
