// Prolog service queues on the two-tier Aquarius architecture
// (Figure 11): lightweight processes on program processors exchange
// service requests through queue descriptors — hard atoms living on
// the synchronization bus — while instruction fetch and
// non-synchronization data go through the crossbar tier. Run with:
//
//	go run ./examples/prolog_queues
package main

import (
	"fmt"
	"math/rand"

	"cachesync/internal/addr"
	"cachesync/internal/aquarius"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
	"cachesync/internal/workload"
)

const (
	procs    = 4
	requests = 30
)

func main() {
	a := aquarius.New(aquarius.DefaultConfig(procs))
	l := workload.Layout{G: a.Sync.Geometry()}

	// Each processor owns a request queue: a lock block plus a
	// descriptor block on the synchronization tier.
	ws := make([]func(*sim.Proc), procs)
	served := make([]int, procs)
	for i := range ws {
		i := i
		rng := rand.New(rand.NewSource(int64(i) + 1))
		ws[i] = func(p *sim.Proc) {
			for r := 0; r < requests; r++ {
				// "Run" the interpreter: instruction fetches through
				// the crossbar tier.
				for pc := 0; pc < 6; pc++ {
					a.InstrFetch(p, addr.Addr(4096+i*64+pc))
				}
				// Bind a variable in non-synchronization data space.
				a.DataWrite(p, addr.Addr(8192+i*requests+r), uint64(r))

				// Post a service request to another processor's queue
				// (e.g. the floating-point processor of Section B.1).
				target := (i + 1 + rng.Intn(procs-1)) % procs
				lock := l.LockAddr(2 + target)
				desc := l.G.Base(l.SharedBlock(1 + target))
				syncprim.Acquire(p, syncprim.CacheLock, lock)
				n := p.Read(desc)
				p.Write(desc, n+1)
				syncprim.Release(p, syncprim.CacheLock, lock)

				// Service one request from my own queue.
				myLock := l.LockAddr(2 + i)
				myDesc := l.G.Base(l.SharedBlock(1 + i))
				syncprim.Acquire(p, syncprim.CacheLock, myLock)
				if n := p.Read(myDesc); n > 0 {
					p.Write(myDesc, n-1)
					served[i]++
				}
				syncprim.Release(p, syncprim.CacheLock, myLock)
			}
		}
	}
	if err := a.Run(ws); err != nil {
		panic(err)
	}

	fmt.Printf("Aquarius two-tier run: %d processors, %d requests each\n", procs, requests)
	fmt.Printf("finished at cycle %d\n", a.Sync.Clock())
	fmt.Printf("sync tier:  %d lock acquisitions, %d unlock broadcasts, %d bus cycles\n",
		a.Sync.Counts.Get("lock.acquired"), a.Sync.Counts.Get("lock.broadcast"),
		a.Sync.Counts.Get("bus.cycles"))
	fmt.Printf("lower tier: %d crossbar accesses, %d bank-wait cycles, ibuf hit rate %d/%d\n",
		a.Counts.Get("xbar.access"), a.Counts.Get("xbar.bank-wait"),
		a.Counts.Get("ibuf.hit"), a.Counts.Get("ibuf.hit")+a.Counts.Get("ibuf.miss"))
	fmt.Printf("bank loads: %v\n", a.BankLoads())
	total := 0
	for i, n := range served {
		fmt.Printf("processor %d served %d requests\n", i, n)
		total += n
	}
	fmt.Printf("total served: %d\n", total)
}
