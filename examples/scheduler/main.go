// Scheduler: Section B.2's software sleep wait. When the hardware has
// no queues, sleep wait is built from busy-wait-protected software
// queues — and the global ready queue becomes the hottest atom in the
// system. This example runs the same multiprocessor scheduler under
// the paper's cache-state lock and under test-and-set spinning, and
// shows the scheduler throughput difference. Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"

	"cachesync/internal/protocol"
	_ "cachesync/internal/protocol/all"
	"cachesync/internal/schedqueue"
	"cachesync/internal/sim"
	"cachesync/internal/syncprim"
)

const (
	workers    = 4
	processes  = 8
	dispatches = 15
)

func run(protoName string, scheme syncprim.Scheme) (clock int64, busTxns int64) {
	cfg := sim.DefaultConfig(protocol.MustNew(protoName))
	cfg.Procs = workers
	s := sim.New(cfg)
	sched := schedqueue.NewScheduler(schedqueue.SchedulerConfig{
		Geometry:  s.Geometry(),
		LockBlock: 0, DescBlock: 2,
		Capacity:  processes + 2,
		StateBase: 200, StateBlocks: 2,
		Quantum: 30,
		Scheme:  scheme,
	})
	ws := make([]func(*sim.Proc), workers)
	ws[0] = func(p *sim.Proc) {
		sched.Seed(p, processes)
		sched.Worker(dispatches)(p)
	}
	for i := 1; i < workers; i++ {
		ws[i] = func(p *sim.Proc) {
			p.Compute(80)
			sched.Worker(dispatches)(p)
		}
	}
	if err := s.Run(ws); err != nil {
		panic(err)
	}
	return s.Clock(), s.Bus.Counts.Total("bus.")
}

func main() {
	fmt.Printf("%d workers scheduling %d lightweight processes, %d dispatches each\n\n",
		workers, processes, dispatches)
	fmt.Printf("%-34s %14s %16s %12s\n", "ready-queue lock", "total cycles", "cycles/dispatch", "bus txns")
	cases := []struct {
		label  string
		proto  string
		scheme syncprim.Scheme
	}{
		{"cache-state lock (the paper)", "bitar", syncprim.CacheLock},
		{"test-and-test-and-set", "bitar", syncprim.TTAS},
		{"raw test-and-set", "illinois", syncprim.TAS},
	}
	for _, c := range cases {
		clock, txns := run(c.proto, c.scheme)
		fmt.Printf("%-34s %14d %16.1f %12d\n", c.label, clock,
			float64(clock)/float64(workers*dispatches), txns)
	}
	fmt.Println("\nthe queue descriptor costs several block fetches per operation (Section B.2),")
	fmt.Println("so the ready-queue lock dominates scheduler throughput — the paper's argument")
	fmt.Println("for putting lock privilege in the cache states")
}
