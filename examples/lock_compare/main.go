// Lock comparison: the paper's headline claims measured head-to-head.
// N processors hammer one busy-wait lock; we compare the cache-state
// lock (zero-time lock/unlock, busy-wait register, no bus retries —
// Sections E.3, E.4) against test-and-set and test-and-test-and-set
// spinning, sweeping the contender count. Run with:
//
//	go run ./examples/lock_compare
package main

import (
	"fmt"
	"os"

	"cachesync"
)

const iters = 25

type variant struct {
	label  string
	proto  string
	scheme cachesync.LockScheme
}

func run(v variant, procs int) (txnsPerAcq, cyclesPerAcq float64, err error) {
	m, err := cachesync.New(cachesync.Config{Protocol: v.proto, Procs: procs})
	if err != nil {
		return 0, 0, err
	}
	l := m.Layout()
	lock := l.LockAddr(0)
	ws := make([]cachesync.Workload, procs)
	for i := range ws {
		ws[i] = func(p *cachesync.Proc) {
			for k := 0; k < iters; k++ {
				cachesync.Acquire(p, v.scheme, lock)
				p.Compute(30) // critical section
				cachesync.Release(p, v.scheme, lock)
				p.Compute(10)
			}
		}
	}
	if err := m.Run(ws); err != nil {
		return 0, 0, err
	}
	st := m.Stats()
	var txns int64
	for _, k := range []string{"bus.read", "bus.readx", "bus.upgrade", "bus.writeword", "bus.unlock", "bus.updateword"} {
		txns += st[k]
	}
	acqs := float64(procs * iters)
	return float64(txns) / acqs, float64(st["bus.cycles"]) / acqs, nil
}

func main() {
	variants := []variant{
		{"cache-state lock (paper)", "bitar", cachesync.CacheLock},
		{"test-and-test-and-set", "illinois", cachesync.TTAS},
		{"raw test-and-set", "illinois", cachesync.TAS},
		{"rudolph-segall busy wait", "rudolph", cachesync.TTAS},
	}
	fmt.Printf("%-26s", "contenders:")
	for _, n := range []int{2, 4, 8} {
		fmt.Printf("  %8d txns %8d cyc", n, n)
	}
	fmt.Println()
	for _, v := range variants {
		fmt.Printf("%-26s", v.label)
		for _, n := range []int{2, 4, 8} {
			txns, cycles, err := run(v, n)
			if err != nil {
				fmt.Fprintf(os.Stderr, "\n%s/%d: %v\n", v.label, n, err)
				os.Exit(1)
			}
			fmt.Printf("  %13.2f %12.1f", txns, cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are bus transactions and bus cycles per lock acquisition;")
	fmt.Println("the cache-state lock stays low because waiters never retry on the bus")
}
